//! [`Durable<M>`] — crash consistency as a composable wrapper.
//!
//! Any [`AccessMethod`] becomes crash-consistent by wrapping it: every
//! mutation is appended to a [`Wal`] and synced *before* it touches the
//! inner structure (write-ahead), and a commit marker is synced *after*
//! the apply succeeds. An operation is committed — guaranteed to survive
//! recovery — exactly when its caller got `Ok`. [`Durable::flush`]
//! checkpoints the live contents and truncates the log;
//! [`Durable::recover`] rebuilds a fresh inner structure from checkpoint
//! plus the committed WAL prefix.
//!
//! All durability traffic (WAL syncs and checkpoint writes) is charged to
//! the method's [`CostTracker`] as auxiliary
//! writes, so the wrapped method's UO honestly includes the price of its
//! logging protocol — the RUM cost the paper folds into write
//! amplification. [`Durable::logging_bytes`] reports that extra traffic
//! exactly, which the crash-matrix bench uses as a self-check:
//! `UO(with WAL) − UO(without) == logging_bytes / logical_write_bytes`.

use std::sync::Arc;

use rum_core::trace::{EventKind, TraceSink};
use rum_core::{
    AccessMethod, CostTracker, DataClass, Key, Record, Result, RumError, SpaceProfile, Value,
    PAGE_SIZE, RECORD_SIZE,
};

use crate::fault::FaultInjector;
use crate::wal::{Wal, WalEntry};

/// Quarantine-rebuild cycles one operation may consume before detected
/// corruption is surfaced to the caller (see
/// [`Durable`]'s internal `with_healing`). Bounded so actively decaying
/// storage degrades into an error, not an infinite repair loop.
pub const MAX_HEAL_CYCLES: usize = 3;

/// What [`Durable::recover`] rebuilt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Committed WAL records re-applied to the fresh structure.
    pub committed_ops: usize,
    /// Sequence number of the last commit marker found, if any.
    pub last_commit_seq: Option<u64>,
    /// Whether the log ended in a torn/corrupt frame (detected, discarded).
    pub torn_tail: bool,
    /// Valid but uncommitted records discarded (trailing suffix of an
    /// in-flight op, or leftovers of an op that failed mid-apply).
    pub uncommitted_discarded: usize,
    /// Whether every committed record was re-applied. Only
    /// [`Durable::recover_prefix`] (used to model a crash *during*
    /// recovery) can leave this `false`.
    pub complete: bool,
}

/// A crash-consistent wrapper around any [`AccessMethod`].
///
/// The `factory` rebuilds an empty inner structure during recovery — a
/// simulated reboot gets a cold structure, then replays checkpoint +
/// committed log. The factory must produce a structure configured
/// identically to the original (same name, same parameters).
pub struct Durable<M: AccessMethod> {
    inner: M,
    factory: Box<dyn Fn() -> M + Send>,
    wal: Wal,
    /// Live contents as of the last checkpoint ([`flush`](Self::flush) or
    /// bulk load); recovery starts from here.
    checkpoint: Vec<Record>,
    /// Cumulative auxiliary bytes charged for checkpoints.
    checkpoint_bytes: u64,
    next_seq: u64,
    /// Whether the WAL holds committed work not yet captured in the
    /// checkpoint (drives checkpoint-on-flush and makes a second
    /// consecutive flush free).
    dirty: bool,
    /// Structured-event channel for checkpoint/recovery events; the
    /// disabled [`NoopSink`](rum_core::trace::NoopSink) by default.
    sink: Arc<dyn TraceSink>,
}

impl<M: AccessMethod> Durable<M> {
    /// Wrap the method `factory` builds, logging to a fault-free WAL.
    pub fn new(factory: impl Fn() -> M + Send + 'static) -> Self {
        Self::build(factory, None)
    }

    /// Wrap with a [`FaultInjector`] armed on the WAL's sync path.
    pub fn with_injector(
        factory: impl Fn() -> M + Send + 'static,
        injector: Arc<FaultInjector>,
    ) -> Self {
        Self::build(factory, Some(injector))
    }

    fn build(
        factory: impl Fn() -> M + Send + 'static,
        injector: Option<Arc<FaultInjector>>,
    ) -> Self {
        let inner = factory();
        let tracker = Arc::clone(inner.tracker());
        let wal = match injector {
            Some(inj) => Wal::with_injector(tracker, inj),
            None => Wal::new(tracker),
        };
        Durable {
            inner,
            factory: Box::new(factory),
            wal,
            checkpoint: Vec::new(),
            checkpoint_bytes: 0,
            next_seq: 0,
            dirty: false,
            sink: rum_core::trace::noop_sink(),
        }
    }

    /// The wrapped structure.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// The write-ahead log.
    pub fn wal(&self) -> &Wal {
        &self.wal
    }

    /// Sequence number of the last committed operation, if any.
    pub fn last_committed_seq(&self) -> Option<u64> {
        self.next_seq.checked_sub(1)
    }

    /// Total auxiliary bytes this wrapper has charged for durability: WAL
    /// syncs plus checkpoint writes. This is exactly the write-byte delta
    /// against the bare inner method on the same workload.
    pub fn logging_bytes(&self) -> u64 {
        self.wal.synced_total() + self.checkpoint_bytes
    }

    /// Charge `bytes` of checkpoint traffic as auxiliary writes (byte-exact
    /// plus page-granular accesses, like the WAL's own accounting).
    fn charge_checkpoint(&mut self, bytes: u64) {
        if bytes == 0 {
            return;
        }
        let tracker = self.inner.tracker();
        tracker.write(DataClass::Aux, bytes);
        for _ in 0..bytes.div_ceil(PAGE_SIZE as u64).max(1) {
            tracker.page_write();
        }
        self.checkpoint_bytes += bytes;
    }

    /// The write-ahead protocol for one mutation: log the record, sync it,
    /// apply, then sync a commit marker covering exactly this record. An
    /// apply failure leaves the record uncovered in the log — replay will
    /// discard it, never resurrect it. Detected corruption during the
    /// apply quarantines the inner structure, rebuilds it from the
    /// checkpoint plus the committed WAL prefix, and retries the whole
    /// sequence on the healed structure, up to [`MAX_HEAL_CYCLES`] times
    /// (the aborted attempts' records stay uncommitted forever).
    fn log_write<T>(&mut self, entry: WalEntry, apply: impl Fn(&mut M) -> Result<T>) -> Result<T> {
        self.with_healing(|d| d.log_write_once(entry, &apply))
    }

    fn log_write_once<T>(
        &mut self,
        entry: WalEntry,
        apply: impl Fn(&mut M) -> Result<T>,
    ) -> Result<T> {
        self.wal.append(&entry);
        self.wal.sync()?;
        let out = apply(&mut self.inner)?;
        self.wal.append(&WalEntry::Commit {
            seq: self.next_seq,
            count: 1,
        });
        self.wal.sync()?;
        self.next_seq += 1;
        self.dirty = true;
        Ok(out)
    }

    /// Read-path healing: run `op` against the inner structure; on
    /// detected corruption, quarantine + rebuild, then retry (bounded).
    fn read_healing<T>(&mut self, op: impl Fn(&mut M) -> Result<T>) -> Result<T> {
        self.with_healing(|d| op(&mut d.inner))
    }

    /// Run `op`, quarantining + rebuilding on every detected corruption,
    /// up to [`MAX_HEAL_CYCLES`] rebuilds. More than one cycle is needed
    /// when the storage is actively decaying: a rebuild writes fresh
    /// pages, and those very pages can be silently damaged before the
    /// retried operation reads them back. Persistent corruption beyond
    /// the bound surfaces as the final [`RumError::CorruptPage`] — the
    /// caller learns the storage is unsalvageable, never wrong data.
    fn with_healing<T>(&mut self, op: impl Fn(&mut Self) -> Result<T>) -> Result<T> {
        let mut last = op(self);
        for _ in 0..MAX_HEAL_CYCLES {
            match last {
                Err(RumError::CorruptPage { .. }) => {
                    self.repair()?;
                    last = op(self);
                }
                other => return other,
            }
        }
        last
    }

    /// Quarantine and rebuild after detected corruption: the inner
    /// structure's physical pages can no longer be trusted, so it is
    /// discarded wholesale and reborn from the checkpoint plus the
    /// committed WAL prefix — fresh storage, corrupted pages abandoned.
    /// The rebuild's I/O is charged to the shared tracker like any
    /// recovery. (Detection itself is traced where it happened, at the
    /// pager; this emits the matching [`EventKind::RepairComplete`].)
    pub fn repair(&mut self) -> Result<RecoveryReport> {
        let report = self.recover()?;
        if self.sink.enabled() {
            self.sink.emit(
                EventKind::RepairComplete,
                &[
                    ("committed_ops", report.committed_ops as u64),
                    ("checkpoint_records", self.checkpoint.len() as u64),
                ],
            );
        }
        Ok(report)
    }

    /// Simulated reboot: rebuild a fresh structure from the checkpoint plus
    /// the entire committed WAL prefix. Idempotent — recovering twice
    /// yields the same structure and the same space profile.
    pub fn recover(&mut self) -> Result<RecoveryReport> {
        self.recover_prefix(usize::MAX)
    }

    /// Recovery that stops after re-applying at most `max_ops` committed
    /// records — models a crash *during* recovery. A subsequent full
    /// [`recover`](Self::recover) starts over from the same durable state
    /// and completes the job.
    pub fn recover_prefix(&mut self, max_ops: usize) -> Result<RecoveryReport> {
        let replay = self.wal.replay();
        let before = self.inner.tracker().snapshot();
        let mut fresh = (self.factory)();
        // Accounting continuity: the reborn structure inherits the history
        // of charges, then pays for its own recovery I/O on top.
        fresh.tracker().absorb(&self.inner.tracker().snapshot());
        if !self.checkpoint.is_empty() {
            fresh.bulk_load_impl(&self.checkpoint)?;
        }
        let applied = replay.committed.len().min(max_ops);
        for entry in &replay.committed[..applied] {
            apply_entry(&mut fresh, entry)?;
        }
        self.wal.set_tracker(Arc::clone(fresh.tracker()));
        self.inner = fresh;
        let complete = applied == replay.committed.len();
        if complete {
            // Cut any torn tail so post-recovery appends follow valid
            // frames (idempotent: the valid prefix is already durable).
            self.wal.truncate_torn_tail(replay.valid_len);
            self.next_seq = replay.last_commit_seq.map_or(0, |s| s + 1);
            self.dirty = !replay.committed.is_empty();
        }
        if self.sink.enabled() {
            // The reborn tracker = inherited history + recovery I/O, so
            // the delta against the pre-recovery snapshot is exactly what
            // the rebuild cost — the bytes a debt ledger should charge
            // back to the writes being replayed.
            let d = self.inner.tracker().snapshot().delta(&before);
            self.sink.emit(
                EventKind::WalRecovery,
                &[
                    ("committed_ops", applied as u64),
                    ("torn", u64::from(replay.torn_tail)),
                    ("discarded", replay.uncommitted as u64),
                    ("complete", u64::from(complete)),
                    ("bytes", d.total_write_bytes()),
                    ("read_bytes", d.total_read_bytes()),
                ],
            );
        }
        Ok(RecoveryReport {
            committed_ops: applied,
            last_commit_seq: replay.last_commit_seq,
            torn_tail: replay.torn_tail,
            uncommitted_discarded: replay.uncommitted,
            complete,
        })
    }
}

/// Re-apply one committed WAL record to a structure.
fn apply_entry<M: AccessMethod>(method: &mut M, entry: &WalEntry) -> Result<()> {
    match *entry {
        WalEntry::Insert { key, value } => method.insert_impl(key, value),
        WalEntry::Update { key, value } => method.update_impl(key, value).map(|_| ()),
        WalEntry::Delete { key } => method.delete_impl(key).map(|_| ()),
        WalEntry::Commit { .. } => Ok(()),
    }
}

impl<M: AccessMethod> AccessMethod for Durable<M> {
    fn name(&self) -> String {
        format!("{}+wal", self.inner.name())
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn tracker(&self) -> &Arc<CostTracker> {
        self.inner.tracker()
    }

    fn space_profile(&self) -> SpaceProfile {
        let mut profile = self.inner.space_profile();
        profile.aux_bytes += self.wal.total_len() + (self.checkpoint.len() * RECORD_SIZE) as u64;
        profile
    }

    fn get_impl(&mut self, key: Key) -> Result<Option<Value>> {
        self.read_healing(|m| m.get_impl(key))
    }

    fn range_impl(&mut self, lo: Key, hi: Key) -> Result<Vec<Record>> {
        self.read_healing(|m| m.range_impl(lo, hi))
    }

    fn insert_impl(&mut self, key: Key, value: Value) -> Result<()> {
        self.log_write(WalEntry::Insert { key, value }, |m| {
            m.insert_impl(key, value)
        })
    }

    fn update_impl(&mut self, key: Key, value: Value) -> Result<bool> {
        self.log_write(WalEntry::Update { key, value }, |m| {
            m.update_impl(key, value)
        })
    }

    fn delete_impl(&mut self, key: Key) -> Result<bool> {
        self.log_write(WalEntry::Delete { key }, |m| m.delete_impl(key))
    }

    fn bulk_load_impl(&mut self, records: &[Record]) -> Result<()> {
        self.inner.bulk_load_impl(records)?;
        // The load itself is the checkpoint: nothing to replay.
        self.checkpoint = records.to_vec();
        self.wal.truncate();
        self.charge_checkpoint((records.len() * RECORD_SIZE) as u64);
        self.next_seq = 0;
        self.dirty = false;
        if self.sink.enabled() {
            self.sink.emit(
                EventKind::WalCheckpoint,
                &[
                    ("records", records.len() as u64),
                    ("bytes", (records.len() * RECORD_SIZE) as u64),
                ],
            );
        }
        Ok(())
    }

    /// Checkpoint: flush the inner structure, persist its live contents,
    /// and truncate the log. A second consecutive flush performs zero
    /// additional physical writes.
    fn flush(&mut self) -> Result<()> {
        self.inner.flush()?;
        self.wal.sync()?;
        if self.dirty {
            self.checkpoint = self.inner.range_impl(0, Key::MAX)?;
            self.charge_checkpoint((self.checkpoint.len() * RECORD_SIZE) as u64);
            self.wal.truncate();
            self.dirty = false;
            if self.sink.enabled() {
                self.sink.emit(
                    EventKind::WalCheckpoint,
                    &[
                        ("records", self.checkpoint.len() as u64),
                        ("bytes", (self.checkpoint.len() * RECORD_SIZE) as u64),
                    ],
                );
            }
        }
        Ok(())
    }

    fn set_trace_sink(&mut self, sink: Arc<dyn TraceSink>) {
        self.inner.set_trace_sink(Arc::clone(&sink));
        self.wal.set_trace_sink(Arc::clone(&sink));
        self.sink = sink;
    }

    /// A durable wrapper can always heal itself: rebuild from checkpoint
    /// + committed WAL prefix, exactly the acked state.
    fn try_heal(&mut self) -> Result<bool> {
        self.repair()?;
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultInjector, FaultPlan};
    use rum_core::{check_bulk_input, RumError};
    use std::collections::BTreeMap;

    /// Minimal correct method for exercising the wrapper.
    struct Toy {
        data: BTreeMap<Key, Value>,
        tracker: Arc<CostTracker>,
    }

    impl Toy {
        fn new() -> Self {
            Toy {
                data: BTreeMap::new(),
                tracker: CostTracker::new(),
            }
        }
    }

    impl AccessMethod for Toy {
        fn name(&self) -> String {
            "toy".into()
        }
        fn len(&self) -> usize {
            self.data.len()
        }
        fn tracker(&self) -> &Arc<CostTracker> {
            &self.tracker
        }
        fn space_profile(&self) -> SpaceProfile {
            SpaceProfile::from_physical(self.data.len(), (self.data.len() * RECORD_SIZE) as u64)
        }
        fn get_impl(&mut self, key: Key) -> Result<Option<Value>> {
            Ok(self.data.get(&key).copied())
        }
        fn range_impl(&mut self, lo: Key, hi: Key) -> Result<Vec<Record>> {
            Ok(self
                .data
                .range(lo..=hi)
                .map(|(&k, &v)| Record::new(k, v))
                .collect())
        }
        fn insert_impl(&mut self, key: Key, value: Value) -> Result<()> {
            self.tracker.write(DataClass::Base, RECORD_SIZE as u64);
            self.data.insert(key, value);
            Ok(())
        }
        fn update_impl(&mut self, key: Key, value: Value) -> Result<bool> {
            match self.data.get_mut(&key) {
                Some(v) => {
                    self.tracker.write(DataClass::Base, RECORD_SIZE as u64);
                    *v = value;
                    Ok(true)
                }
                None => Ok(false),
            }
        }
        fn delete_impl(&mut self, key: Key) -> Result<bool> {
            Ok(self.data.remove(&key).is_some())
        }
        fn bulk_load_impl(&mut self, records: &[Record]) -> Result<()> {
            check_bulk_input(records)?;
            self.tracker
                .write(DataClass::Base, (records.len() * RECORD_SIZE) as u64);
            self.data = records.iter().map(|r| (r.key, r.value)).collect();
            Ok(())
        }
    }

    fn contents<M: AccessMethod>(m: &mut M) -> Vec<Record> {
        m.range_impl(0, Key::MAX).unwrap()
    }

    #[test]
    fn writes_are_logged_and_charged_as_aux() {
        let mut d = Durable::new(Toy::new);
        d.insert(1, 10).unwrap();
        d.update(1, 11).unwrap();
        d.delete(1).unwrap();
        assert_eq!(d.last_committed_seq(), Some(2));
        let s = d.tracker().snapshot();
        assert_eq!(s.aux_write_bytes, d.wal().synced_total());
        assert!(s.aux_write_bytes > 0, "WAL traffic must be visible in UO");
        assert_eq!(d.logging_bytes(), s.aux_write_bytes);
    }

    #[test]
    fn recover_replays_the_committed_prefix() {
        let mut d = Durable::new(Toy::new);
        for k in 0..10u64 {
            d.insert(k, k * 10).unwrap();
        }
        d.delete(3).unwrap();
        d.update(4, 999).unwrap();
        let before = contents(&mut d);
        let report = d.recover().unwrap();
        assert!(report.complete);
        assert!(!report.torn_tail);
        assert_eq!(report.committed_ops, 12);
        assert_eq!(report.uncommitted_discarded, 0);
        assert_eq!(contents(&mut d), before, "recovery is lossless");
        // And idempotent: a second recovery changes nothing.
        let profile = d.space_profile();
        d.recover().unwrap();
        assert_eq!(contents(&mut d), before);
        assert_eq!(d.space_profile(), profile);
    }

    #[test]
    fn crash_mid_sync_recovers_exactly_the_committed_prefix() {
        // First, learn the full WAL footprint of the op sequence.
        let mut reference = Durable::new(Toy::new);
        for k in 0..20u64 {
            reference.insert(k, k).unwrap();
        }
        let total = reference.wal().synced_total();
        // Crash at every byte of that footprint.
        for cut in 0..total {
            for torn in [false, true] {
                let plan = if torn {
                    FaultPlan::torn_at(cut)
                } else {
                    FaultPlan::crash_at(cut)
                };
                let mut d = Durable::with_injector(Toy::new, FaultInjector::new(plan));
                let mut committed = 0u64;
                let mut crashed = false;
                for k in 0..20u64 {
                    match d.insert(k, k) {
                        Ok(()) => committed += 1,
                        Err(RumError::Crash(_)) => {
                            crashed = true;
                            break;
                        }
                        Err(e) => panic!("unexpected error: {e}"),
                    }
                }
                assert!(crashed, "cut={cut} must interrupt some sync");
                let report = d.recover().unwrap();
                assert!(report.complete);
                assert_eq!(
                    report.committed_ops as u64, committed,
                    "cut={cut} torn={torn}: recovery must match acknowledged ops"
                );
                let want: Vec<Record> = (0..committed).map(|k| Record::new(k, k)).collect();
                assert_eq!(contents(&mut d), want, "cut={cut} torn={torn}");
            }
        }
    }

    #[test]
    fn failed_commit_flush_means_the_op_never_happened() {
        // Flush #2 is the commit-marker sync of the first insert: the data
        // record is durable but uncovered, so recovery must drop it.
        let inj = FaultInjector::new(FaultPlan::fail_flush(2));
        let mut d = Durable::with_injector(Toy::new, inj);
        assert!(matches!(d.insert(1, 10), Err(RumError::Crash(_))));
        let report = d.recover().unwrap();
        assert_eq!(report.committed_ops, 0);
        assert_eq!(report.uncommitted_discarded, 1);
        assert_eq!(contents(&mut d), vec![]);
        // The structure still works after the power event.
        d.insert(2, 20).unwrap();
        d.recover().unwrap();
        assert_eq!(contents(&mut d), vec![Record::new(2, 20)]);
    }

    #[test]
    fn flush_checkpoints_truncates_and_is_idempotent() {
        let mut d = Durable::new(Toy::new);
        for k in 0..8u64 {
            d.insert(k, k).unwrap();
        }
        assert!(d.wal().durable_len() > 0);
        d.flush().unwrap();
        assert_eq!(d.wal().durable_len(), 0, "checkpoint truncates the log");
        let before = d.tracker().snapshot();
        d.flush().unwrap();
        let delta = d.tracker().since(&before);
        assert_eq!(delta.total_write_bytes(), 0, "second flush writes nothing");
        assert_eq!(delta.page_writes, 0);
        // Recovery now comes purely from the checkpoint.
        let report = d.recover().unwrap();
        assert_eq!(report.committed_ops, 0);
        assert_eq!(contents(&mut d).len(), 8);
    }

    #[test]
    fn bulk_load_is_a_checkpoint() {
        let mut d = Durable::new(Toy::new);
        d.insert(99, 1).unwrap();
        let records: Vec<Record> = (0..5u64).map(|k| Record::new(k, k)).collect();
        d.bulk_load(&records).unwrap();
        assert_eq!(d.wal().durable_len(), 0, "load resets the log");
        d.recover().unwrap();
        assert_eq!(contents(&mut d), records, "pre-load state is gone");
    }

    #[test]
    fn crash_during_recovery_then_full_recovery_converges() {
        let mut d = Durable::new(Toy::new);
        for k in 0..10u64 {
            d.insert(k, k).unwrap();
        }
        let want = contents(&mut d);
        for partial in 0..10usize {
            let report = d.recover_prefix(partial).unwrap();
            assert!(!report.complete);
            let report = d.recover().unwrap();
            assert!(report.complete);
            assert_eq!(report.committed_ops, 10);
            assert_eq!(contents(&mut d), want, "partial={partial}");
        }
    }

    #[test]
    fn torn_tail_is_cut_so_later_commits_survive() {
        // Crash with a torn final frame, recover, keep writing: the new
        // commits must be visible to a second recovery (the torn bytes
        // were trimmed, not buried).
        let mut reference = Durable::new(Toy::new);
        reference.insert(1, 10).unwrap();
        let one_op = reference.wal().synced_total();
        let inj = FaultInjector::new(FaultPlan::torn_at(one_op + 10));
        let mut d = Durable::with_injector(Toy::new, inj);
        d.insert(1, 10).unwrap();
        assert!(matches!(d.insert(2, 20), Err(RumError::Crash(_))));
        let report = d.recover().unwrap();
        assert!(report.torn_tail, "the tear must be detected");
        assert_eq!(report.committed_ops, 1);
        d.insert(3, 30).unwrap();
        d.recover().unwrap();
        assert_eq!(
            contents(&mut d),
            vec![Record::new(1, 10), Record::new(3, 30)]
        );
    }

    /// A method whose reads/applies report detected corruption until the
    /// factory rebuilds it — the storage-level stand-in for a flipped bit
    /// under a checksum seal.
    struct Rotten {
        inner: Toy,
        bad: Arc<std::sync::atomic::AtomicBool>,
    }
    impl Rotten {
        fn check(&self) -> Result<()> {
            if self.bad.load(std::sync::atomic::Ordering::Relaxed) {
                Err(RumError::CorruptPage {
                    id: 42,
                    stored: 1,
                    computed: 2,
                })
            } else {
                Ok(())
            }
        }
    }
    impl AccessMethod for Rotten {
        fn name(&self) -> String {
            "rotten".into()
        }
        fn len(&self) -> usize {
            self.inner.len()
        }
        fn tracker(&self) -> &Arc<CostTracker> {
            self.inner.tracker()
        }
        fn space_profile(&self) -> SpaceProfile {
            self.inner.space_profile()
        }
        fn get_impl(&mut self, key: Key) -> Result<Option<Value>> {
            self.check()?;
            self.inner.get_impl(key)
        }
        fn range_impl(&mut self, lo: Key, hi: Key) -> Result<Vec<Record>> {
            self.check()?;
            self.inner.range_impl(lo, hi)
        }
        fn insert_impl(&mut self, key: Key, value: Value) -> Result<()> {
            self.check()?;
            self.inner.insert_impl(key, value)
        }
        fn update_impl(&mut self, key: Key, value: Value) -> Result<bool> {
            self.check()?;
            self.inner.update_impl(key, value)
        }
        fn delete_impl(&mut self, key: Key) -> Result<bool> {
            self.check()?;
            self.inner.delete_impl(key)
        }
        fn bulk_load_impl(&mut self, records: &[Record]) -> Result<()> {
            self.inner.bulk_load_impl(records)
        }
    }

    /// A factory over a shared rot flag: instances share it, and recovery
    /// (fresh physical storage) clears it — like abandoning bad pages.
    fn rotten_factory() -> (
        impl Fn() -> Rotten + Send + 'static,
        Arc<std::sync::atomic::AtomicBool>,
    ) {
        let bad = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let shared = Arc::clone(&bad);
        let factory = move || {
            // A rebuilt instance starts on clean storage.
            shared.store(false, std::sync::atomic::Ordering::Relaxed);
            Rotten {
                inner: Toy::new(),
                bad: Arc::clone(&shared),
            }
        };
        (factory, bad)
    }

    #[test]
    fn detected_corruption_on_read_heals_to_the_acked_state() {
        let (factory, bad) = rotten_factory();
        let mut d = Durable::new(factory);
        let sink = rum_core::trace::MemorySink::shared();
        d.set_trace_sink(Arc::clone(&sink) as _);
        for k in 0..12u64 {
            d.insert(k, k * 7).unwrap();
        }
        bad.store(true, std::sync::atomic::Ordering::Relaxed);
        // The read heals transparently: quarantine, rebuild from WAL,
        // retry — and serves the acked value.
        assert_eq!(d.get(5).unwrap(), Some(35));
        assert_eq!(contents(&mut d).len(), 12, "all acked ops survived");
        let repairs = sink
            .events()
            .iter()
            .filter(|e| e.kind == EventKind::RepairComplete)
            .count();
        assert_eq!(repairs, 1, "exactly one repair cycle");
        // And the structure keeps serving afterwards.
        d.insert(100, 1).unwrap();
        assert_eq!(d.get(100).unwrap(), Some(1));
    }

    #[test]
    fn detected_corruption_mid_apply_heals_and_retries_the_write() {
        let (factory, bad) = rotten_factory();
        let mut d = Durable::new(factory);
        for k in 0..6u64 {
            d.insert(k, k).unwrap();
        }
        bad.store(true, std::sync::atomic::Ordering::Relaxed);
        // The apply hits corruption after the record is logged: heal,
        // re-log, re-apply. The caller just sees Ok.
        d.insert(50, 500).unwrap();
        assert_eq!(d.get(50).unwrap(), Some(500));
        // The aborted first record stays uncommitted forever: recovery
        // reports it discarded and the contents stay exactly the acked set.
        let report = d.recover().unwrap();
        assert!(report.uncommitted_discarded >= 1, "aborted record dropped");
        let mut want: Vec<Record> = (0..6u64).map(|k| Record::new(k, k)).collect();
        want.push(Record::new(50, 500));
        assert_eq!(contents(&mut d), want);
    }

    #[test]
    fn try_heal_rebuilds_a_durable_method() {
        let (factory, _bad) = rotten_factory();
        let mut d = Durable::new(factory);
        for k in 0..4u64 {
            d.insert(k, k + 1).unwrap();
        }
        assert!(d.try_heal().unwrap(), "durable methods can heal");
        assert_eq!(
            contents(&mut d),
            (0..4u64).map(|k| Record::new(k, k + 1)).collect::<Vec<_>>()
        );
        // The default implementation reports no capability.
        let mut toy = Toy::new();
        assert!(!toy.try_heal().unwrap());
    }

    #[test]
    fn failed_apply_is_never_resurrected() {
        /// A method whose nth insert fails after the WAL already holds the
        /// record — the aborted record must stay uncommitted forever.
        struct Flaky {
            inner: Toy,
            fail_at: usize,
            inserts: usize,
        }
        impl AccessMethod for Flaky {
            fn name(&self) -> String {
                "flaky".into()
            }
            fn len(&self) -> usize {
                self.inner.len()
            }
            fn tracker(&self) -> &Arc<CostTracker> {
                self.inner.tracker()
            }
            fn space_profile(&self) -> SpaceProfile {
                self.inner.space_profile()
            }
            fn get_impl(&mut self, key: Key) -> Result<Option<Value>> {
                self.inner.get_impl(key)
            }
            fn range_impl(&mut self, lo: Key, hi: Key) -> Result<Vec<Record>> {
                self.inner.range_impl(lo, hi)
            }
            fn insert_impl(&mut self, key: Key, value: Value) -> Result<()> {
                self.inserts += 1;
                if self.inserts == self.fail_at {
                    return Err(RumError::Storage("injected apply failure".into()));
                }
                self.inner.insert_impl(key, value)
            }
            fn update_impl(&mut self, key: Key, value: Value) -> Result<bool> {
                self.inner.update_impl(key, value)
            }
            fn delete_impl(&mut self, key: Key) -> Result<bool> {
                self.inner.delete_impl(key)
            }
            fn bulk_load_impl(&mut self, records: &[Record]) -> Result<()> {
                self.inner.bulk_load_impl(records)
            }
        }
        // Only the original instance is flaky — the factory disarms the
        // failure for the instances recovery rebuilds.
        let armed = Arc::new(std::sync::atomic::AtomicBool::new(true));
        let mut d = Durable::new(move || Flaky {
            inner: Toy::new(),
            fail_at: if armed.swap(false, std::sync::atomic::Ordering::Relaxed) {
                2
            } else {
                usize::MAX
            },
            inserts: 0,
        });
        d.insert(1, 10).unwrap();
        assert!(matches!(d.insert(2, 20), Err(RumError::Storage(_))));
        d.insert(3, 30).unwrap();
        let report = d.recover().unwrap();
        assert_eq!(report.committed_ops, 2);
        assert_eq!(report.uncommitted_discarded, 1, "aborted record dropped");
        assert_eq!(
            contents(&mut d),
            vec![Record::new(1, 10), Record::new(3, 30)],
            "key 2 was aborted and must not reappear"
        );
    }
}
