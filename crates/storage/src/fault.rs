//! Deterministic fault injection: the storage substrate as a crash-test
//! rig.
//!
//! A [`FaultPlan`] describes *one* failure — crash after N durable bytes
//! (optionally tearing the write in progress), or failing the nth flush —
//! and a [`FaultInjector`] arms it over a shared atomic byte/flush clock.
//! Everything is deterministic: the same plan over the same operation
//! sequence fires at exactly the same byte, so every cell of the crash
//! matrix is reproducible bit-for-bit.
//!
//! The injector is consulted by the [`Wal`](crate::wal::Wal) on every
//! `sync()` and by [`FaultDevice`] on every page write, so both the
//! logging path and the paged substrate can "lose power" mid-write.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use rum_core::PAGE_SIZE;

use crate::device::{BlockDevice, IoStats};
use crate::page::{PageBuf, PageId};
use rum_core::{Result, RumError};

/// One planned failure. `None` is the control cell of the matrix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultPlan {
    /// Never fire.
    None,
    /// Power loss once cumulative durable bytes would exceed `offset`: the
    /// write in flight keeps exactly its first `offset - written_so_far`
    /// bytes. With `torn`, the kept tail is additionally bit-flipped —
    /// modelling a sector that was mid-write when power dropped — so
    /// checksums, not luck, must catch it.
    CrashAtByte { offset: u64, torn: bool },
    /// The `nth` (1-based) flush/sync call fails outright: nothing in that
    /// flush reaches durable storage.
    FailFlush { nth: u64 },
}

impl FaultPlan {
    /// Clean power loss at a byte offset.
    pub fn crash_at(offset: u64) -> Self {
        FaultPlan::CrashAtByte {
            offset,
            torn: false,
        }
    }

    /// Power loss at a byte offset with the kept tail corrupted.
    pub fn torn_at(offset: u64) -> Self {
        FaultPlan::CrashAtByte { offset, torn: true }
    }

    /// Fail the `nth` flush (1-based).
    pub fn fail_flush(nth: u64) -> Self {
        FaultPlan::FailFlush { nth: nth.max(1) }
    }

    /// A seeded crash point inside `[0, total_bytes)` — `splitmix64` keeps
    /// the sweep deterministic without pulling in an RNG dependency.
    pub fn seeded_crash(seed: u64, total_bytes: u64, torn: bool) -> Self {
        FaultPlan::CrashAtByte {
            offset: splitmix64(seed) % total_bytes.max(1),
            torn,
        }
    }
}

/// `splitmix64` — the classic 64-bit finalizer; one u64 in, one u64 out,
/// full-period and well mixed. Enough randomness for picking crash points.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// What a durable-write path must do with the bytes it is persisting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WriteOutcome {
    /// All bytes reach durable storage.
    Persist,
    /// Power loss: only the first `keep` bytes land; with `torn`, the kept
    /// tail is corrupted in place. The caller must then fail with
    /// [`RumError::Crash`].
    CrashKeeping { keep: u64, torn: bool },
    /// This flush fails wholesale; nothing lands.
    FailFlush,
}

/// Arms a [`FaultPlan`] over shared atomic counters. Cheap to clone via
/// `Arc` so a WAL and a device can share one byte clock. Each injector
/// fires **at most once** (`fired`), mirroring a single power event.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    durable_bytes: AtomicU64,
    flush_calls: AtomicU64,
    fired: AtomicBool,
}

impl FaultInjector {
    pub fn new(plan: FaultPlan) -> Arc<Self> {
        Arc::new(FaultInjector {
            plan,
            durable_bytes: AtomicU64::new(0),
            flush_calls: AtomicU64::new(0),
            fired: AtomicBool::new(false),
        })
    }

    /// An injector that never fires (the matrix's reference cell).
    pub fn inert() -> Arc<Self> {
        Self::new(FaultPlan::None)
    }

    /// The plan this injector arms.
    pub fn plan(&self) -> FaultPlan {
        self.plan
    }

    /// Whether the fault has fired.
    pub fn fired(&self) -> bool {
        self.fired.load(Ordering::Relaxed)
    }

    /// Cumulative bytes allowed through to durable storage.
    pub fn durable_bytes(&self) -> u64 {
        self.durable_bytes.load(Ordering::Relaxed)
    }

    /// Consult the plan for a durable write of `len` bytes (one WAL sync or
    /// one page write). Advances the byte/flush clocks and returns what the
    /// caller must persist. Callers are driven `&mut`, so the two-step
    /// check-then-advance below is not racy in practice; the atomics only
    /// make sharing one injector across structures safe.
    pub fn on_durable_write(&self, len: u64) -> WriteOutcome {
        let flush_no = self.flush_calls.fetch_add(1, Ordering::Relaxed) + 1;
        let written = self.durable_bytes.load(Ordering::Relaxed);
        match self.plan {
            FaultPlan::FailFlush { nth } if flush_no == nth && !self.fired() => {
                self.fired.store(true, Ordering::Relaxed);
                WriteOutcome::FailFlush
            }
            FaultPlan::CrashAtByte { offset, torn }
                if !self.fired() && written.saturating_add(len) > offset =>
            {
                self.fired.store(true, Ordering::Relaxed);
                let keep = offset.saturating_sub(written).min(len);
                self.durable_bytes.fetch_add(keep, Ordering::Relaxed);
                WriteOutcome::CrashKeeping { keep, torn }
            }
            _ => {
                self.durable_bytes.fetch_add(len, Ordering::Relaxed);
                WriteOutcome::Persist
            }
        }
    }
}

/// A [`BlockDevice`] wrapper that runs every page write past a
/// [`FaultInjector`]: a crash mid-page persists a *torn page* (new prefix
/// spliced over the old contents) and surfaces [`RumError::Crash`].
pub struct FaultDevice<D: BlockDevice> {
    inner: D,
    injector: Arc<FaultInjector>,
}

impl<D: BlockDevice> FaultDevice<D> {
    pub fn new(inner: D, injector: Arc<FaultInjector>) -> Self {
        FaultDevice { inner, injector }
    }

    pub fn injector(&self) -> &Arc<FaultInjector> {
        &self.injector
    }

    pub fn inner(&self) -> &D {
        &self.inner
    }
}

impl<D: BlockDevice> BlockDevice for FaultDevice<D> {
    fn allocate(&mut self) -> Result<PageId> {
        self.inner.allocate()
    }

    fn free(&mut self, id: PageId) -> Result<()> {
        self.inner.free(id)
    }

    fn read_page(&mut self, id: PageId) -> Result<PageBuf> {
        self.inner.read_page(id)
    }

    fn write_page(&mut self, id: PageId, page: &PageBuf) -> Result<()> {
        match self.injector.on_durable_write(PAGE_SIZE as u64) {
            WriteOutcome::Persist => self.inner.write_page(id, page),
            WriteOutcome::CrashKeeping { keep, torn } => {
                // Persist a torn page: new prefix over old suffix.
                let mut merged = self.inner.read_page(id)?;
                let keep = (keep as usize).min(PAGE_SIZE);
                merged.as_mut_slice()[..keep].copy_from_slice(&page.as_slice()[..keep]);
                if torn && keep > 0 {
                    let lo = keep.saturating_sub(8);
                    for b in &mut merged.as_mut_slice()[lo..keep] {
                        *b ^= 0xA5;
                    }
                }
                self.inner.write_page(id, &merged)?;
                Err(RumError::Crash(format!(
                    "power loss during write of {id}: {keep} of {PAGE_SIZE} bytes persisted"
                )))
            }
            WriteOutcome::FailFlush => Err(RumError::Crash(format!(
                "flush failed while writing {id}: nothing persisted"
            ))),
        }
    }

    fn live_pages(&self) -> usize {
        self.inner.live_pages()
    }

    fn stats(&self) -> &Arc<IoStats> {
        self.inner.stats()
    }

    fn sync(&mut self) -> Result<()> {
        self.inner.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::MemDevice;

    #[test]
    fn splitmix_is_deterministic_and_mixed() {
        assert_eq!(splitmix64(1), splitmix64(1));
        assert_ne!(splitmix64(1), splitmix64(2));
        let spread: std::collections::HashSet<u64> = (0..64).map(|i| splitmix64(i) % 97).collect();
        assert!(spread.len() > 32, "outputs should spread across residues");
    }

    #[test]
    fn crash_plan_fires_once_at_the_byte() {
        let inj = FaultInjector::new(FaultPlan::crash_at(100));
        assert_eq!(inj.on_durable_write(60), WriteOutcome::Persist);
        assert_eq!(
            inj.on_durable_write(60),
            WriteOutcome::CrashKeeping {
                keep: 40,
                torn: false
            }
        );
        assert!(inj.fired());
        assert_eq!(inj.durable_bytes(), 100);
        // Once fired, the power event is over; later writes persist.
        assert_eq!(inj.on_durable_write(60), WriteOutcome::Persist);
    }

    #[test]
    fn fail_flush_targets_the_nth_call() {
        let inj = FaultInjector::new(FaultPlan::fail_flush(2));
        assert_eq!(inj.on_durable_write(10), WriteOutcome::Persist);
        assert_eq!(inj.on_durable_write(10), WriteOutcome::FailFlush);
        assert_eq!(inj.on_durable_write(10), WriteOutcome::Persist);
        assert_eq!(inj.durable_bytes(), 20, "failed flush persisted nothing");
    }

    #[test]
    fn seeded_crash_is_reproducible_and_in_range() {
        for seed in 0..32u64 {
            let a = FaultPlan::seeded_crash(seed, 1000, false);
            let b = FaultPlan::seeded_crash(seed, 1000, false);
            assert_eq!(a, b);
            match a {
                FaultPlan::CrashAtByte { offset, .. } => assert!(offset < 1000),
                other => panic!("unexpected plan {other:?}"),
            }
        }
    }

    #[test]
    fn fault_device_persists_a_torn_page() {
        let inj = FaultInjector::new(FaultPlan::torn_at(PAGE_SIZE as u64 + 100));
        let mut dev = FaultDevice::new(MemDevice::new(), Arc::clone(&inj));
        let a = dev.allocate().unwrap();
        let b = dev.allocate().unwrap();
        let mut old = PageBuf::zeroed();
        old.as_mut_slice().fill(0x11);
        dev.write_page(b, &old).unwrap(); // first page write: fits budget
        let mut new = PageBuf::zeroed();
        new.as_mut_slice().fill(0x22);
        let err = dev.write_page(b, &new).unwrap_err();
        assert!(matches!(err, RumError::Crash(_)), "got {err:?}");
        let after = dev.read_page(b).unwrap();
        // 100 bytes of budget remained: prefix is new (except the torn,
        // bit-flipped tail of the kept range), suffix is the old contents.
        assert_eq!(after.as_slice()[0], 0x22);
        assert_eq!(after.as_slice()[99], 0x22 ^ 0xA5, "tail of keep is torn");
        assert_eq!(after.as_slice()[100], 0x11, "suffix keeps old contents");
        // The untouched page is unaffected, and the device still works.
        let _ = dev.read_page(a).unwrap();
        assert_eq!(dev.write_page(b, &new), Ok(()));
    }
}
