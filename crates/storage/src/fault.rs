//! Deterministic fault injection: the storage substrate as a crash-test
//! rig.
//!
//! A [`FaultPlan`] describes *one* failure — crash after N durable bytes
//! (optionally tearing the write in progress), or failing the nth flush —
//! and a [`FaultInjector`] arms it over a shared atomic byte/flush clock.
//! A [`FaultProfile`] layers *recurring* faults on top of the one-shot
//! plan: seeded transient read/write errors with bounded burst length,
//! sticky bad pages, and silent bit-flips spliced into stored bytes.
//! Everything is deterministic: the same plan and profile over the same
//! operation sequence fire at exactly the same byte/op, so every cell of
//! the crash and fault-storm matrices is reproducible bit-for-bit.
//!
//! The injector is consulted by the [`Wal`](crate::wal::Wal) on every
//! `sync()` and by [`FaultDevice`] on every page read and write — both
//! through the same [`FaultInjector::on_durable_write`] helper, so the
//! byte clock advances once per durable write no matter which path
//! carries it, and a transiently-failed write (which will be retried)
//! never consumes byte-clock budget.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use rum_core::PAGE_SIZE;

use crate::device::{BlockDevice, IoStats};
use crate::page::{PageBuf, PageId};
use rum_core::{Result, RumError};

/// One planned failure. `None` is the control cell of the matrix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultPlan {
    /// Never fire.
    None,
    /// Power loss once cumulative durable bytes would exceed `offset`: the
    /// write in flight keeps exactly its first `offset - written_so_far`
    /// bytes. With `torn`, the kept tail is additionally bit-flipped —
    /// modelling a sector that was mid-write when power dropped — so
    /// checksums, not luck, must catch it.
    CrashAtByte { offset: u64, torn: bool },
    /// The `nth` (1-based) flush/sync call fails outright: nothing in that
    /// flush reaches durable storage.
    FailFlush { nth: u64 },
}

impl FaultPlan {
    /// Clean power loss at a byte offset.
    pub fn crash_at(offset: u64) -> Self {
        FaultPlan::CrashAtByte {
            offset,
            torn: false,
        }
    }

    /// Power loss at a byte offset with the kept tail corrupted.
    pub fn torn_at(offset: u64) -> Self {
        FaultPlan::CrashAtByte { offset, torn: true }
    }

    /// Fail the `nth` flush (1-based).
    pub fn fail_flush(nth: u64) -> Self {
        FaultPlan::FailFlush { nth: nth.max(1) }
    }

    /// A seeded crash point inside `[0, total_bytes)` — `splitmix64` keeps
    /// the sweep deterministic without pulling in an RNG dependency.
    pub fn seeded_crash(seed: u64, total_bytes: u64, torn: bool) -> Self {
        FaultPlan::CrashAtByte {
            offset: splitmix64(seed) % total_bytes.max(1),
            torn,
        }
    }
}

/// `splitmix64` — the classic 64-bit finalizer; one u64 in, one u64 out,
/// full-period and well mixed. Enough randomness for picking crash points.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A profile of *recurring* faults layered over the one-shot [`FaultPlan`].
/// All draws are splitmix64-seeded: the same profile over the same op
/// sequence injects exactly the same faults.
///
/// Probabilities are in parts per million so integer arithmetic stays
/// exact. A transient fault that fires at op `n` keeps failing for a
/// seeded burst of `1..=max_burst` consecutive attempts — a retry policy
/// converges whenever `max_attempts > max_burst`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultProfile {
    /// Seed for every draw this profile makes.
    pub seed: u64,
    /// Per-read probability (ppm) of a transient read error.
    pub read_error_ppm: u32,
    /// Per-write probability (ppm) of a transient write error. Transient
    /// write failures do **not** advance the durable byte clock — the
    /// write will be retried, and double-counting would shift every
    /// downstream `CrashAtByte` point.
    pub write_error_ppm: u32,
    /// Longest transient burst: a firing fault fails `1..=max_burst`
    /// consecutive attempts (seeded draw). Zero behaves as one.
    pub max_burst: u32,
    /// Per-persisted-write probability (ppm) of silently flipping one
    /// seeded bit in the stored bytes. The write reports success — only a
    /// checksum can reveal the damage.
    pub bitflip_ppm: u32,
    /// Per-page probability (ppm) of the page being "sticky bad": every
    /// read of it fails hard (non-transient), modelling an unreadable
    /// sector. A function of the page id alone, so it is stable across
    /// the run.
    pub sticky_ppm: u32,
}

/// Domain-separation salts so read, write, flip, and sticky draws sample
/// independent splitmix64 streams from one seed.
const READ_SALT: u64 = 0x5245_4144_5F53_4C54;
const WRITE_SALT: u64 = 0x5752_4954_455F_534C;
const FLIP_SALT: u64 = 0x464C_4950_5F53_414C;
const STICKY_SALT: u64 = 0x5354_4943_4B59_5F53;

impl FaultProfile {
    /// A profile that injects nothing (the matrix's control cell).
    pub fn none(seed: u64) -> Self {
        FaultProfile {
            seed,
            read_error_ppm: 0,
            write_error_ppm: 0,
            max_burst: 1,
            bitflip_ppm: 0,
            sticky_ppm: 0,
        }
    }

    /// Transient read+write errors at `ppm`, bursts up to `max_burst`.
    pub fn transient(seed: u64, ppm: u32, max_burst: u32) -> Self {
        FaultProfile {
            read_error_ppm: ppm,
            write_error_ppm: ppm,
            max_burst: max_burst.max(1),
            ..Self::none(seed)
        }
    }

    /// Silent bit-flips on stored writes at `ppm`.
    pub fn bitflips(seed: u64, ppm: u32) -> Self {
        FaultProfile {
            bitflip_ppm: ppm,
            ..Self::none(seed)
        }
    }

    /// Sticky unreadable pages at `ppm` of the page-id space.
    pub fn sticky(seed: u64, ppm: u32) -> Self {
        FaultProfile {
            sticky_ppm: ppm,
            ..Self::none(seed)
        }
    }

    /// Whether this profile can inject anything at all.
    pub fn is_active(&self) -> bool {
        self.read_error_ppm > 0
            || self.write_error_ppm > 0
            || self.bitflip_ppm > 0
            || self.sticky_ppm > 0
    }
}

/// Deterministic bounded backoff: exponential doubling from `base_ns`,
/// capped at `cap_ns`, no jitter (jitter would break bit-exact replay).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Backoff {
    /// Delay before the first retry, in simulated nanoseconds.
    pub base_ns: u64,
    /// Ceiling on any single delay.
    pub cap_ns: u64,
}

impl Backoff {
    /// No waiting at all.
    pub fn none() -> Self {
        Backoff {
            base_ns: 0,
            cap_ns: 0,
        }
    }

    /// Simulated delay before retry number `attempt` (1-based: the delay
    /// taken after the `attempt`-th failed try).
    pub fn delay_ns(&self, attempt: u32) -> u64 {
        if self.base_ns == 0 {
            return 0;
        }
        let shifted = self.base_ns.saturating_mul(
            1u64.checked_shl(attempt.saturating_sub(1))
                .unwrap_or(u64::MAX),
        );
        shifted.min(self.cap_ns.max(self.base_ns))
    }
}

/// How many times to attempt a page access that keeps failing
/// transiently, and how long to (simulated-)wait between attempts.
/// Consulted by the [`Pager`](crate::pager::Pager) and the
/// [`Wal`](crate::wal::Wal); every failed attempt is still charged to the
/// cost tracker, so resilience shows up as RO/UO in the RUM report.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts including the first (minimum 1).
    pub max_attempts: u32,
    /// Simulated backoff between attempts.
    pub backoff: Backoff,
}

impl RetryPolicy {
    /// Fail on the first transient error — the "no resilience" baseline.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            backoff: Backoff::none(),
        }
    }

    /// `max_attempts` tries with the default backoff curve.
    pub fn attempts(max_attempts: u32) -> Self {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            ..Self::default()
        }
    }
}

impl Default for RetryPolicy {
    /// Three attempts, 1 µs doubling to a 1 ms cap. On a clean device the
    /// policy is never consulted, so the default changes nothing unless
    /// faults are injected.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff: Backoff {
                base_ns: 1_000,
                cap_ns: 1_000_000,
            },
        }
    }
}

/// What a durable-write path must do with the bytes it is persisting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WriteOutcome {
    /// All bytes reach durable storage.
    Persist,
    /// All bytes land, but bit `bit` (an offset into this write's bytes)
    /// is flipped in the stored copy. The caller persists the damaged
    /// bytes and reports success — silent corruption by construction.
    PersistFlipped { bit: u64 },
    /// Power loss: only the first `keep` bytes land; with `torn`, the kept
    /// tail is corrupted in place. The caller must then fail with
    /// [`RumError::Crash`].
    CrashKeeping { keep: u64, torn: bool },
    /// This flush fails wholesale; nothing lands.
    FailFlush,
    /// Transient device error: nothing lands and the byte clock did not
    /// advance. The caller surfaces [`RumError::Transient`] and may retry.
    Transient,
}

/// What a page read must do, per the recurring profile.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReadOutcome {
    /// Serve the page normally.
    Serve,
    /// Transient read error: fail with [`RumError::Transient`]; a retry
    /// may succeed.
    Transient,
    /// The page is sticky-bad: fail hard with [`RumError::Storage`];
    /// retries are pointless.
    Sticky,
}

/// Arms a [`FaultPlan`] (and optionally a recurring [`FaultProfile`]) over
/// shared atomic counters. Cheap to clone via `Arc` so a WAL and a device
/// can share one byte clock. The one-shot plan fires **at most once**
/// (`fired`), mirroring a single power event; the profile keeps firing for
/// as long as its seeded draws say so.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    profile: Option<FaultProfile>,
    durable_bytes: AtomicU64,
    flush_calls: AtomicU64,
    fired: AtomicBool,
    // Profile op clocks: reads and writes draw from independent seeded
    // streams; `*_faulty_until` carries an in-progress transient burst.
    read_ops: AtomicU64,
    write_ops: AtomicU64,
    read_faulty_until: AtomicU64,
    write_faulty_until: AtomicU64,
    flip_ops: AtomicU64,
    // Tallies for reporting.
    transient_faults: AtomicU64,
    bitflips: AtomicU64,
    sticky_hits: AtomicU64,
}

impl FaultInjector {
    pub fn new(plan: FaultPlan) -> Arc<Self> {
        Self::with_profile(plan, None)
    }

    /// An injector arming both a one-shot plan and a recurring profile.
    pub fn with_profile(plan: FaultPlan, profile: Option<FaultProfile>) -> Arc<Self> {
        Arc::new(FaultInjector {
            plan,
            profile,
            durable_bytes: AtomicU64::new(0),
            flush_calls: AtomicU64::new(0),
            fired: AtomicBool::new(false),
            read_ops: AtomicU64::new(0),
            write_ops: AtomicU64::new(0),
            read_faulty_until: AtomicU64::new(0),
            write_faulty_until: AtomicU64::new(0),
            flip_ops: AtomicU64::new(0),
            transient_faults: AtomicU64::new(0),
            bitflips: AtomicU64::new(0),
            sticky_hits: AtomicU64::new(0),
        })
    }

    /// An injector that never fires (the matrix's reference cell).
    pub fn inert() -> Arc<Self> {
        Self::new(FaultPlan::None)
    }

    /// The plan this injector arms.
    pub fn plan(&self) -> FaultPlan {
        self.plan
    }

    /// The recurring profile, if any.
    pub fn profile(&self) -> Option<FaultProfile> {
        self.profile
    }

    /// Whether the one-shot fault has fired.
    pub fn fired(&self) -> bool {
        self.fired.load(Ordering::Relaxed)
    }

    /// Cumulative bytes allowed through to durable storage.
    pub fn durable_bytes(&self) -> u64 {
        self.durable_bytes.load(Ordering::Relaxed)
    }

    /// Transient faults injected so far (reads and writes).
    pub fn transient_faults(&self) -> u64 {
        self.transient_faults.load(Ordering::Relaxed)
    }

    /// Silent bit-flips injected so far.
    pub fn bitflips(&self) -> u64 {
        self.bitflips.load(Ordering::Relaxed)
    }

    /// Reads refused because the page is sticky-bad.
    pub fn sticky_hits(&self) -> u64 {
        self.sticky_hits.load(Ordering::Relaxed)
    }

    /// One seeded transient draw on the `ops`/`until` clock pair. Advances
    /// the op clock, starts a burst when the per-op draw fires, and keeps
    /// failing while inside a burst.
    fn transient_hit(&self, ops: &AtomicU64, until: &AtomicU64, ppm: u32, salt: u64) -> bool {
        let profile = match self.profile {
            Some(p) if ppm > 0 => p,
            _ => return false,
        };
        let n = ops.fetch_add(1, Ordering::Relaxed) + 1;
        let burst_end = until.load(Ordering::Relaxed);
        if n <= burst_end {
            self.transient_faults.fetch_add(1, Ordering::Relaxed);
            return true;
        }
        if burst_end > 0 && n == burst_end + 1 {
            // The first op after a burst is forced clean: bursts never
            // chain, so consecutive failures are hard-capped at
            // `max_burst` and a retry policy with `max_attempts >
            // max_burst` provably converges.
            return false;
        }
        let r = splitmix64(profile.seed ^ salt ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        if r % 1_000_000 < u64::from(ppm) {
            let burst = 1 + splitmix64(r) % u64::from(profile.max_burst.max(1));
            until.store(n + burst - 1, Ordering::Relaxed);
            self.transient_faults.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// Whether `page` is sticky-bad under the profile: a pure function of
    /// the page id, so the same pages stay bad for the whole run.
    pub fn is_sticky(&self, page: u64) -> bool {
        match self.profile {
            Some(p) if p.sticky_ppm > 0 => {
                splitmix64(p.seed ^ STICKY_SALT ^ page) % 1_000_000 < u64::from(p.sticky_ppm)
            }
            _ => false,
        }
    }

    /// Consult the profile for one page read of `page`.
    pub fn on_page_read(&self, page: u64) -> ReadOutcome {
        if self.is_sticky(page) {
            self.sticky_hits.fetch_add(1, Ordering::Relaxed);
            return ReadOutcome::Sticky;
        }
        let ppm = self.profile.map_or(0, |p| p.read_error_ppm);
        if self.transient_hit(&self.read_ops, &self.read_faulty_until, ppm, READ_SALT) {
            ReadOutcome::Transient
        } else {
            ReadOutcome::Serve
        }
    }

    /// Consult the plan and profile for a durable write of `len` bytes
    /// (one WAL sync or one page write) — the **single** helper every
    /// durable path goes through, so the byte/flush clocks advance exactly
    /// once per landed write. Transient failures are checked first and
    /// advance neither clock: the write will be retried, and charging it
    /// would shift every downstream `CrashAtByte` point. Callers are
    /// driven `&mut`, so the two-step check-then-advance below is not racy
    /// in practice; the atomics only make sharing one injector across
    /// structures safe.
    pub fn on_durable_write(&self, len: u64) -> WriteOutcome {
        let ppm = self.profile.map_or(0, |p| p.write_error_ppm);
        if self.transient_hit(&self.write_ops, &self.write_faulty_until, ppm, WRITE_SALT) {
            return WriteOutcome::Transient;
        }
        let flush_no = self.flush_calls.fetch_add(1, Ordering::Relaxed) + 1;
        let written = self.durable_bytes.load(Ordering::Relaxed);
        match self.plan {
            FaultPlan::FailFlush { nth } if flush_no == nth && !self.fired() => {
                self.fired.store(true, Ordering::Relaxed);
                WriteOutcome::FailFlush
            }
            FaultPlan::CrashAtByte { offset, torn }
                if !self.fired() && written.saturating_add(len) > offset =>
            {
                self.fired.store(true, Ordering::Relaxed);
                let keep = offset.saturating_sub(written).min(len);
                self.durable_bytes.fetch_add(keep, Ordering::Relaxed);
                WriteOutcome::CrashKeeping { keep, torn }
            }
            _ => {
                self.durable_bytes.fetch_add(len, Ordering::Relaxed);
                match self.flip_draw(len * 8) {
                    Some(bit) => WriteOutcome::PersistFlipped { bit },
                    None => WriteOutcome::Persist,
                }
            }
        }
    }

    /// Seeded bit-flip draw for a persisted write of `len_bits` bits.
    fn flip_draw(&self, len_bits: u64) -> Option<u64> {
        let profile = self.profile?;
        if profile.bitflip_ppm == 0 || len_bits == 0 {
            return None;
        }
        let n = self.flip_ops.fetch_add(1, Ordering::Relaxed) + 1;
        let r = splitmix64(profile.seed ^ FLIP_SALT ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        if r % 1_000_000 < u64::from(profile.bitflip_ppm) {
            self.bitflips.fetch_add(1, Ordering::Relaxed);
            Some(splitmix64(r ^ FLIP_SALT) % len_bits)
        } else {
            None
        }
    }
}

/// A [`BlockDevice`] wrapper that runs every page access past a
/// [`FaultInjector`]: a crash mid-page persists a *torn page* (new prefix
/// spliced over the old contents) and surfaces [`RumError::Crash`]; a
/// recurring profile adds transient read/write errors
/// ([`RumError::Transient`]), sticky-bad pages, and silent bit-flips in
/// the stored bytes. Stack a
/// [`CheckedDevice`](crate::checked::CheckedDevice) *around* this wrapper
/// so flips land under the seal and are caught on read.
pub struct FaultDevice<D: BlockDevice> {
    inner: D,
    injector: Arc<FaultInjector>,
}

impl<D: BlockDevice> FaultDevice<D> {
    pub fn new(inner: D, injector: Arc<FaultInjector>) -> Self {
        FaultDevice { inner, injector }
    }

    pub fn injector(&self) -> &Arc<FaultInjector> {
        &self.injector
    }

    pub fn inner(&self) -> &D {
        &self.inner
    }
}

impl<D: BlockDevice> BlockDevice for FaultDevice<D> {
    fn allocate(&mut self) -> Result<PageId> {
        self.inner.allocate()
    }

    fn free(&mut self, id: PageId) -> Result<()> {
        self.inner.free(id)
    }

    fn read_page(&mut self, id: PageId) -> Result<PageBuf> {
        match self.injector.on_page_read(id.0) {
            ReadOutcome::Serve => self.inner.read_page(id),
            ReadOutcome::Transient => {
                Err(RumError::Transient(format!("transient read error on {id}")))
            }
            ReadOutcome::Sticky => Err(RumError::Storage(format!(
                "sticky bad page {id}: unreadable sector"
            ))),
        }
    }

    fn write_page(&mut self, id: PageId, page: &PageBuf) -> Result<()> {
        match self.injector.on_durable_write(PAGE_SIZE as u64) {
            WriteOutcome::Persist => self.inner.write_page(id, page),
            WriteOutcome::PersistFlipped { bit } => {
                // Silent corruption: store the page with one bit flipped
                // and report success — only a checksum can tell.
                let mut damaged = page.clone();
                let bit = (bit as usize) % (PAGE_SIZE * 8);
                damaged.as_mut_slice()[bit / 8] ^= 1 << (bit % 8);
                self.inner.write_page(id, &damaged)
            }
            WriteOutcome::Transient => Err(RumError::Transient(format!(
                "transient write error on {id}"
            ))),
            WriteOutcome::CrashKeeping { keep, torn } => {
                // Persist a torn page: new prefix over old suffix.
                let mut merged = self.inner.read_page(id)?;
                let keep = (keep as usize).min(PAGE_SIZE);
                merged.as_mut_slice()[..keep].copy_from_slice(&page.as_slice()[..keep]);
                if torn && keep > 0 {
                    let lo = keep.saturating_sub(8);
                    for b in &mut merged.as_mut_slice()[lo..keep] {
                        *b ^= 0xA5;
                    }
                }
                self.inner.write_page(id, &merged)?;
                Err(RumError::Crash(format!(
                    "power loss during write of {id}: {keep} of {PAGE_SIZE} bytes persisted"
                )))
            }
            WriteOutcome::FailFlush => Err(RumError::Crash(format!(
                "flush failed while writing {id}: nothing persisted"
            ))),
        }
    }

    fn live_pages(&self) -> usize {
        self.inner.live_pages()
    }

    fn stats(&self) -> &Arc<IoStats> {
        self.inner.stats()
    }

    fn sync(&mut self) -> Result<()> {
        self.inner.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::MemDevice;

    #[test]
    fn splitmix_is_deterministic_and_mixed() {
        assert_eq!(splitmix64(1), splitmix64(1));
        assert_ne!(splitmix64(1), splitmix64(2));
        let spread: std::collections::HashSet<u64> = (0..64).map(|i| splitmix64(i) % 97).collect();
        assert!(spread.len() > 32, "outputs should spread across residues");
    }

    #[test]
    fn crash_plan_fires_once_at_the_byte() {
        let inj = FaultInjector::new(FaultPlan::crash_at(100));
        assert_eq!(inj.on_durable_write(60), WriteOutcome::Persist);
        assert_eq!(
            inj.on_durable_write(60),
            WriteOutcome::CrashKeeping {
                keep: 40,
                torn: false
            }
        );
        assert!(inj.fired());
        assert_eq!(inj.durable_bytes(), 100);
        // Once fired, the power event is over; later writes persist.
        assert_eq!(inj.on_durable_write(60), WriteOutcome::Persist);
    }

    #[test]
    fn fail_flush_targets_the_nth_call() {
        let inj = FaultInjector::new(FaultPlan::fail_flush(2));
        assert_eq!(inj.on_durable_write(10), WriteOutcome::Persist);
        assert_eq!(inj.on_durable_write(10), WriteOutcome::FailFlush);
        assert_eq!(inj.on_durable_write(10), WriteOutcome::Persist);
        assert_eq!(inj.durable_bytes(), 20, "failed flush persisted nothing");
    }

    #[test]
    fn seeded_crash_is_reproducible_and_in_range() {
        for seed in 0..32u64 {
            let a = FaultPlan::seeded_crash(seed, 1000, false);
            let b = FaultPlan::seeded_crash(seed, 1000, false);
            assert_eq!(a, b);
            match a {
                FaultPlan::CrashAtByte { offset, .. } => assert!(offset < 1000),
                other => panic!("unexpected plan {other:?}"),
            }
        }
    }

    #[test]
    fn backoff_doubles_to_cap() {
        let b = Backoff {
            base_ns: 100,
            cap_ns: 500,
        };
        assert_eq!(b.delay_ns(1), 100);
        assert_eq!(b.delay_ns(2), 200);
        assert_eq!(b.delay_ns(3), 400);
        assert_eq!(b.delay_ns(4), 500, "capped");
        assert_eq!(b.delay_ns(100), 500, "huge attempts saturate, no overflow");
        assert_eq!(Backoff::none().delay_ns(3), 0);
    }

    #[test]
    fn transient_profile_is_deterministic_and_bounded() {
        let profile = FaultProfile::transient(42, 200_000, 3);
        let a = FaultInjector::with_profile(FaultPlan::None, Some(profile));
        let b = FaultInjector::with_profile(FaultPlan::None, Some(profile));
        let seq_a: Vec<WriteOutcome> = (0..400).map(|_| a.on_durable_write(64)).collect();
        let seq_b: Vec<WriteOutcome> = (0..400).map(|_| b.on_durable_write(64)).collect();
        assert_eq!(seq_a, seq_b, "same seed, same op sequence, same faults");
        assert!(a.transient_faults() > 0, "20% ppm over 400 ops must fire");
        // No burst of consecutive transient failures exceeds max_burst.
        let mut run = 0u32;
        for o in &seq_a {
            if *o == WriteOutcome::Transient {
                run += 1;
                assert!(run <= 3, "burst exceeded max_burst");
            } else {
                run = 0;
            }
        }
    }

    #[test]
    fn transient_reads_are_deterministic_and_sticky_pages_stay_bad() {
        let profile = FaultProfile {
            sticky_ppm: 100_000,
            ..FaultProfile::transient(7, 100_000, 2)
        };
        let inj = FaultInjector::with_profile(FaultPlan::None, Some(profile));
        // Sticky-ness is a pure function of the page id: stable across reads
        // and independent of the transient op clock.
        let sticky: Vec<u64> = (0..200).filter(|&p| inj.is_sticky(p)).collect();
        assert!(!sticky.is_empty(), "10% of 200 pages should be sticky");
        assert!(sticky.len() < 100, "but nowhere near half");
        for &p in sticky.iter().take(4) {
            for _ in 0..3 {
                assert_eq!(inj.on_page_read(p), ReadOutcome::Sticky);
            }
        }
        assert!(inj.sticky_hits() > 0);
        // A non-sticky page sees only Serve/Transient, deterministically.
        let good = (0..200).find(|&p| !inj.is_sticky(p)).unwrap();
        let twin = FaultInjector::with_profile(FaultPlan::None, Some(profile));
        let seq: Vec<ReadOutcome> = (0..300).map(|_| inj.on_page_read(good)).collect();
        for &p in sticky.iter().take(4) {
            for _ in 0..3 {
                assert_eq!(twin.on_page_read(p), ReadOutcome::Sticky);
            }
        }
        let seq2: Vec<ReadOutcome> = (0..300).map(|_| twin.on_page_read(good)).collect();
        assert_eq!(seq, seq2);
        assert!(seq.contains(&ReadOutcome::Transient));
    }

    #[test]
    fn transient_write_never_advances_the_byte_clock() {
        let profile = FaultProfile {
            read_error_ppm: 0,
            ..FaultProfile::transient(3, 300_000, 2)
        };
        let inj = FaultInjector::with_profile(FaultPlan::None, Some(profile));
        let mut persisted = 0u64;
        for _ in 0..500 {
            match inj.on_durable_write(10) {
                WriteOutcome::Persist => persisted += 10,
                WriteOutcome::Transient => {}
                other => panic!("unexpected outcome {other:?}"),
            }
        }
        assert_eq!(
            inj.durable_bytes(),
            persisted,
            "byte clock counts only landed bytes"
        );
    }

    /// Satellite: the byte clock across *mixed* WAL + device traffic.
    /// Recurring transient write faults must not double-count or shift the
    /// one-shot crash point: the crash still fires exactly when cumulative
    /// *landed* bytes cross the offset, no matter how many transiently
    /// failed attempts were interleaved on either path.
    #[test]
    fn byte_clock_is_shared_and_stable_across_mixed_wal_and_device_traffic() {
        use crate::device::MemDevice;
        use crate::wal::{Wal, WalEntry};
        use rum_core::CostTracker;

        let crash_offset = 3 * PAGE_SIZE as u64 + 100;
        let profile = FaultProfile {
            read_error_ppm: 0,
            ..FaultProfile::transient(11, 250_000, 2)
        };
        let inj = FaultInjector::with_profile(FaultPlan::crash_at(crash_offset), Some(profile));
        let mut wal = Wal::with_injector(CostTracker::new(), Arc::clone(&inj));
        // Generous retries so transient bursts never surface from sync().
        wal.set_retry_policy(RetryPolicy::attempts(8));
        let mut dev = FaultDevice::new(MemDevice::new(), Arc::clone(&inj));
        let id = dev.allocate().unwrap();
        let page = PageBuf::zeroed();

        let mut landed = 0u64;
        let mut crashed = false;
        'outer: for round in 0..64u64 {
            // One WAL record synced (8-byte frame header + 17-byte payload)...
            wal.append(&WalEntry::Insert {
                key: round,
                value: round,
            });
            match wal.sync() {
                Ok(()) => landed += 25,
                Err(RumError::Crash(_)) => {
                    crashed = true;
                    break 'outer;
                }
                Err(e) => panic!("unexpected WAL error {e:?}"),
            }
            // ...then one page write, retried past transient faults.
            let mut attempts = 0;
            loop {
                match dev.write_page(id, &page) {
                    Ok(()) => {
                        landed += PAGE_SIZE as u64;
                        break;
                    }
                    Err(RumError::Transient(_)) => {
                        attempts += 1;
                        assert!(attempts <= 8, "burst exceeded profile bound");
                    }
                    Err(RumError::Crash(_)) => {
                        crashed = true;
                        break 'outer;
                    }
                    Err(e) => panic!("unexpected device error {e:?}"),
                }
            }
        }
        assert!(crashed, "the crash plan must eventually fire");
        assert_eq!(
            inj.durable_bytes(),
            crash_offset,
            "crash fired exactly at the planned byte despite interleaved transients"
        );
        assert!(
            landed >= crash_offset - PAGE_SIZE as u64,
            "landed bytes track the clock up to the final partial write"
        );
    }

    #[test]
    fn bitflips_are_silent_and_deterministic() {
        let profile = FaultProfile::bitflips(5, 1_000_000); // always flip
        let inj = FaultInjector::with_profile(FaultPlan::None, Some(profile));
        let mut dev = FaultDevice::new(MemDevice::new(), Arc::clone(&inj));
        let id = dev.allocate().unwrap();
        let mut page = PageBuf::zeroed();
        page.as_mut_slice().fill(0x11);
        dev.write_page(id, &page).unwrap(); // reports success
        assert_eq!(inj.bitflips(), 1);
        let stored = dev.read_page(id).unwrap();
        let differing: Vec<usize> = (0..PAGE_SIZE)
            .filter(|&i| stored.as_slice()[i] != 0x11)
            .collect();
        assert_eq!(differing.len(), 1, "exactly one byte damaged");
        let delta = stored.as_slice()[differing[0]] ^ 0x11;
        assert_eq!(delta.count_ones(), 1, "exactly one bit flipped");
        // Same seed → same bit.
        let twin_inj = FaultInjector::with_profile(FaultPlan::None, Some(profile));
        let mut twin = FaultDevice::new(MemDevice::new(), Arc::clone(&twin_inj));
        let tid = twin.allocate().unwrap();
        twin.write_page(tid, &page).unwrap();
        assert_eq!(
            twin.read_page(tid).unwrap().as_slice(),
            stored.as_slice(),
            "flip position is a pure function of the seed and op clock"
        );
    }

    #[test]
    fn fault_device_persists_a_torn_page() {
        let inj = FaultInjector::new(FaultPlan::torn_at(PAGE_SIZE as u64 + 100));
        let mut dev = FaultDevice::new(MemDevice::new(), Arc::clone(&inj));
        let a = dev.allocate().unwrap();
        let b = dev.allocate().unwrap();
        let mut old = PageBuf::zeroed();
        old.as_mut_slice().fill(0x11);
        dev.write_page(b, &old).unwrap(); // first page write: fits budget
        let mut new = PageBuf::zeroed();
        new.as_mut_slice().fill(0x22);
        let err = dev.write_page(b, &new).unwrap_err();
        assert!(matches!(err, RumError::Crash(_)), "got {err:?}");
        let after = dev.read_page(b).unwrap();
        // 100 bytes of budget remained: prefix is new (except the torn,
        // bit-flipped tail of the kept range), suffix is the old contents.
        assert_eq!(after.as_slice()[0], 0x22);
        assert_eq!(after.as_slice()[99], 0x22 ^ 0xA5, "tail of keep is torn");
        assert_eq!(after.as_slice()[100], 0x11, "suffix keeps old contents");
        // The untouched page is unaffected, and the device still works.
        let _ = dev.read_page(a).unwrap();
        assert_eq!(dev.write_page(b, &new), Ok(()));
    }
}
