//! # rum-storage
//!
//! The simulated block-storage substrate beneath every paged access method
//! in the RUM reproduction.
//!
//! The paper's cost model (Aggarwal–Vitter I/O complexity, Table 1) counts
//! block accesses; its §4 "Memory Hierarchy" discussion replays the RUM
//! tradeoffs at every level of a cache/memory/storage stack. This crate
//! provides both measurement substrates:
//!
//! * [`page`] / [`device`] — 4 KiB pages over an instrumented in-memory
//!   block device ([`MemDevice`]) that counts reads,
//!   writes, allocations and frees ([`IoStats`]).
//! * [`cost`] — a device cost model
//!   ([`DeviceProfile`]) translating page accesses
//!   into simulated nanoseconds, with HDD / SSD / DRAM presets that honor
//!   the sequential-vs-random distinction the paper calls out ("in the
//!   1970s ... minimize the number of random accesses on disk; ... now we
//!   minimize the number of random accesses to main memory").
//! * [`lru`] — an intrusive O(1) LRU used by the buffer pool and cache
//!   levels.
//! * [`buffer`] — a [`BufferPool`] with hit/miss
//!   accounting and dirty write-back.
//! * [`pager`] — the [`Pager`]: the facade access methods
//!   allocate and touch pages through; every access is charged to a
//!   [`CostTracker`](rum_core::CostTracker) with its
//!   [`DataClass`](rum_core::DataClass) (base vs. auxiliary), which is what
//!   makes RO/UO/MO measurable.
//! * [`hierarchy`] — the multi-level
//!   [`MemoryHierarchy`] simulator behind the
//!   Figure 2 experiment.
//! * [`wal`] / [`durable`] — the crash-consistency layer: a checksummed
//!   write-ahead log whose every synced byte is charged as auxiliary write
//!   traffic (so UO includes the durability protocol), and the
//!   [`Durable`] wrapper adding WAL + checkpoint +
//!   recovery to any access method.
//! * [`fault`] — deterministic fault injection
//!   ([`FaultInjector`]): seeded crash points, torn
//!   writes, and failed flushes over the WAL sync path and the block
//!   device, powering the crash-matrix experiment; plus recurring seeded
//!   faults ([`FaultProfile`]) — transient read/write errors with bounded
//!   bursts, sticky bad pages, silent bit-flips — and the deterministic
//!   [`RetryPolicy`] the pager and WAL answer them with.
//! * [`checked`] — sealed pages: [`CheckedDevice`]
//!   seals every write with the WAL's CRC-32 in a sidecar map and verifies
//!   on read, turning silent bit-rot into
//!   [`RumError::CorruptPage`](rum_core::RumError::CorruptPage); the
//!   pager's [`scrub`](Pager::scrub) walks the seals and prices the
//!   verification as auxiliary reads.

pub mod buffer;
pub mod checked;
pub mod cost;
pub mod device;
pub mod durable;
pub mod fault;
pub mod hierarchy;
pub mod lru;
pub mod page;
pub mod pager;
pub mod wal;

pub use buffer::BufferPool;
pub use checked::{CheckedDevice, ScrubReport};
pub use cost::DeviceProfile;
pub use device::{BlockDevice, IoStats, MemDevice};
pub use durable::{Durable, RecoveryReport};
pub use fault::{
    splitmix64, Backoff, FaultDevice, FaultInjector, FaultPlan, FaultProfile, ReadOutcome,
    RetryPolicy, WriteOutcome,
};
pub use hierarchy::{HierarchySpec, LevelSpec, MemoryHierarchy};
pub use lru::LruSet;
pub use page::{PageBuf, PageId};
pub use pager::Pager;
pub use wal::{crc32, Wal, WalEntry, WalReplay};
