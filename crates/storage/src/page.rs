//! Page identity and page buffers.

use rum_core::PAGE_SIZE;

/// Identifier of a page on a block device. Dense, starting at 0.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageId(pub u64);

impl PageId {
    /// Sentinel for "no page" (e.g. the next-pointer of the last B-tree
    /// leaf).
    pub const INVALID: PageId = PageId(u64::MAX);

    #[inline]
    pub fn is_valid(&self) -> bool {
        *self != PageId::INVALID
    }

    #[inline]
    pub fn index(&self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for PageId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_valid() {
            write!(f, "pg#{}", self.0)
        } else {
            write!(f, "pg#∅")
        }
    }
}

/// An owned, fixed-size page buffer. Reads copy out of the device into one
/// of these; writes copy it back — page-granular traffic is the point of
/// the simulation, and copying 4 KiB keeps the API free of borrow puzzles.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PageBuf {
    data: Box<[u8]>,
}

impl PageBuf {
    /// A zeroed page.
    pub fn zeroed() -> Self {
        PageBuf {
            data: vec![0u8; PAGE_SIZE].into_boxed_slice(),
        }
    }

    /// Wrap raw bytes (must be exactly one page).
    pub fn from_bytes(bytes: &[u8]) -> Self {
        assert_eq!(bytes.len(), PAGE_SIZE, "page must be {PAGE_SIZE} bytes");
        PageBuf {
            data: bytes.to_vec().into_boxed_slice(),
        }
    }

    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }

    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Freeze into an immutable, cheaply-clonable byte buffer.
    pub fn freeze(self) -> std::sync::Arc<[u8]> {
        self.data.into()
    }

    // ---- little-endian field accessors used by node layouts -------------

    #[inline]
    pub fn read_u16(&self, off: usize) -> u16 {
        u16::from_le_bytes(
            self.data[off..off + 2]
                .try_into()
                .expect("slice is exactly 2 bytes"),
        )
    }

    #[inline]
    pub fn write_u16(&mut self, off: usize, v: u16) {
        self.data[off..off + 2].copy_from_slice(&v.to_le_bytes());
    }

    #[inline]
    pub fn read_u32(&self, off: usize) -> u32 {
        u32::from_le_bytes(
            self.data[off..off + 4]
                .try_into()
                .expect("slice is exactly 4 bytes"),
        )
    }

    #[inline]
    pub fn write_u32(&mut self, off: usize, v: u32) {
        self.data[off..off + 4].copy_from_slice(&v.to_le_bytes());
    }

    #[inline]
    pub fn read_u64(&self, off: usize) -> u64 {
        u64::from_le_bytes(
            self.data[off..off + 8]
                .try_into()
                .expect("slice is exactly 8 bytes"),
        )
    }

    #[inline]
    pub fn write_u64(&mut self, off: usize, v: u64) {
        self.data[off..off + 8].copy_from_slice(&v.to_le_bytes());
    }
}

impl Default for PageBuf {
    fn default() -> Self {
        Self::zeroed()
    }
}

impl std::ops::Deref for PageBuf {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl std::ops::DerefMut for PageBuf {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_page_is_page_sized() {
        let p = PageBuf::zeroed();
        assert_eq!(p.as_slice().len(), PAGE_SIZE);
        assert!(p.as_slice().iter().all(|&b| b == 0));
    }

    #[test]
    fn field_accessors_roundtrip() {
        let mut p = PageBuf::zeroed();
        p.write_u16(0, 0xBEEF);
        p.write_u32(2, 0xDEAD_BEEF);
        p.write_u64(8, u64::MAX - 3);
        assert_eq!(p.read_u16(0), 0xBEEF);
        assert_eq!(p.read_u32(2), 0xDEAD_BEEF);
        assert_eq!(p.read_u64(8), u64::MAX - 3);
    }

    #[test]
    fn from_bytes_roundtrip() {
        let mut raw = vec![0u8; PAGE_SIZE];
        raw[17] = 42;
        let p = PageBuf::from_bytes(&raw);
        assert_eq!(p.as_slice()[17], 42);
    }

    #[test]
    #[should_panic(expected = "page must be")]
    fn from_bytes_rejects_wrong_size() {
        let _ = PageBuf::from_bytes(&[0u8; 100]);
    }

    #[test]
    fn invalid_page_id() {
        assert!(!PageId::INVALID.is_valid());
        assert!(PageId(0).is_valid());
        assert_eq!(PageId(7).to_string(), "pg#7");
    }
}
