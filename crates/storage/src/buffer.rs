//! A buffer pool: an LRU page cache with dirty write-back in front of a
//! block device. Caching more pages is literally "paying MO at level n−1
//! to reduce RO and UO at level n" (Figure 2 of the paper) — the pool's
//! footprint is memory overhead, and its hit rate is the read/write traffic
//! it absorbs.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rum_core::trace::{EventKind, TraceSink};
use rum_core::{Result, RumError, PAGE_SIZE};

use crate::device::{BlockDevice, IoStats};
use crate::lru::LruSet;
use crate::page::{PageBuf, PageId};

/// Buffer pool hit/miss counters.
#[derive(Debug, Default)]
pub struct PoolStats {
    pub hits: AtomicU64,
    pub misses: AtomicU64,
    pub write_backs: AtomicU64,
}

impl PoolStats {
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
    pub fn write_backs(&self) -> u64 {
        self.write_backs.load(Ordering::Relaxed)
    }
    pub fn hit_rate(&self) -> f64 {
        let (h, m) = (self.hits() as f64, self.misses() as f64);
        if h + m == 0.0 {
            0.0
        } else {
            h / (h + m)
        }
    }
}

/// An LRU buffer pool over any [`BlockDevice`]. Implements [`BlockDevice`]
/// itself so access methods are oblivious to whether they run cached.
pub struct BufferPool<D: BlockDevice> {
    inner: D,
    frames: HashMap<PageId, PageBuf>,
    lru: LruSet<PageId>,
    pool_stats: Arc<PoolStats>,
    /// Structured-event channel for eviction events; the disabled
    /// [`NoopSink`](rum_core::trace::NoopSink) by default.
    sink: Arc<dyn TraceSink>,
}

impl<D: BlockDevice> BufferPool<D> {
    /// Wrap `inner` with a cache of `capacity` pages.
    pub fn new(inner: D, capacity: usize) -> Self {
        BufferPool {
            inner,
            frames: HashMap::with_capacity(capacity.min(1 << 20)),
            lru: LruSet::new(capacity),
            pool_stats: Arc::new(PoolStats::default()),
            sink: rum_core::trace::noop_sink(),
        }
    }

    /// Install a sink for [`EventKind::BufferEviction`] events. The pool
    /// only reads its own state for them, so tracing never changes what is
    /// cached or written back.
    pub fn set_trace_sink(&mut self, sink: Arc<dyn TraceSink>) {
        self.sink = sink;
    }

    pub fn pool_stats(&self) -> &Arc<PoolStats> {
        &self.pool_stats
    }

    /// Pool capacity in pages — the MO this cache spends.
    pub fn capacity(&self) -> usize {
        self.lru.capacity()
    }

    /// Resident page count.
    pub fn resident(&self) -> usize {
        self.lru.len()
    }

    /// Access to the wrapped device.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    fn handle_eviction(&mut self, evicted: Option<(PageId, bool)>) -> Result<()> {
        if let Some((victim, dirty)) = evicted {
            let frame = self.frames.remove(&victim);
            if self.sink.enabled() {
                self.sink.emit(
                    EventKind::BufferEviction,
                    &[
                        ("page", victim.0),
                        ("dirty", u64::from(dirty)),
                        ("bytes", if dirty { PAGE_SIZE as u64 } else { 0 }),
                    ],
                );
            }
            if dirty {
                // A dirty LRU entry with no backing frame means the pool's
                // two indexes disagree — writing nothing back would silently
                // lose the page's modifications.
                let buf = frame.ok_or_else(|| {
                    RumError::Corrupt(format!(
                        "buffer pool evicted dirty {victim} with no cached frame"
                    ))
                })?;
                self.pool_stats.write_backs.fetch_add(1, Ordering::Relaxed);
                self.inner.write_page(victim, &buf)?;
            }
        }
        Ok(())
    }
}

impl<D: BlockDevice> BlockDevice for BufferPool<D> {
    fn allocate(&mut self) -> Result<PageId> {
        self.inner.allocate()
    }

    fn free(&mut self, id: PageId) -> Result<()> {
        // Discard any cached copy (dirty or not — the page is going away).
        self.lru.remove(&id);
        self.frames.remove(&id);
        self.inner.free(id)
    }

    fn read_page(&mut self, id: PageId) -> Result<PageBuf> {
        if self.lru.touch(&id) {
            self.pool_stats.hits.fetch_add(1, Ordering::Relaxed);
            return self.frames.get(&id).cloned().ok_or_else(|| {
                RumError::Corrupt(format!(
                    "buffer pool LRU lists {id} but no frame is cached for it"
                ))
            });
        }
        self.pool_stats.misses.fetch_add(1, Ordering::Relaxed);
        let buf = self.inner.read_page(id)?;
        if self.lru.capacity() > 0 {
            self.frames.insert(id, buf.clone());
            let evicted = self.lru.insert(id, false);
            self.handle_eviction(evicted)?;
        }
        Ok(buf)
    }

    fn write_page(&mut self, id: PageId, page: &PageBuf) -> Result<()> {
        if self.lru.capacity() == 0 {
            return self.inner.write_page(id, page);
        }
        self.frames.insert(id, page.clone());
        let evicted = self.lru.insert(id, true);
        self.lru.mark_dirty(&id);
        self.handle_eviction(evicted)
    }

    fn live_pages(&self) -> usize {
        self.inner.live_pages()
    }

    fn stats(&self) -> &Arc<IoStats> {
        self.inner.stats()
    }

    fn sync(&mut self) -> Result<()> {
        for (id, dirty) in self.lru.drain() {
            let frame = self.frames.remove(&id);
            if dirty {
                let buf = frame.ok_or_else(|| {
                    RumError::Corrupt(format!(
                        "buffer pool sync found dirty {id} with no cached frame"
                    ))
                })?;
                self.pool_stats.write_backs.fetch_add(1, Ordering::Relaxed);
                self.inner.write_page(id, &buf)?;
            }
        }
        self.inner.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::MemDevice;

    fn pool(cap: usize) -> BufferPool<MemDevice> {
        BufferPool::new(MemDevice::new(), cap)
    }

    #[test]
    fn repeated_reads_hit_cache() {
        let mut p = pool(4);
        let id = p.allocate().unwrap();
        p.read_page(id).unwrap(); // miss
        p.read_page(id).unwrap(); // hit
        p.read_page(id).unwrap(); // hit
        assert_eq!(p.pool_stats().hits(), 2);
        assert_eq!(p.pool_stats().misses(), 1);
        assert_eq!(p.inner().stats().reads(), 1, "device saw only the miss");
    }

    #[test]
    fn dirty_pages_write_back_on_eviction() {
        let mut p = pool(1);
        let a = p.allocate().unwrap();
        let b = p.allocate().unwrap();
        let mut buf = PageBuf::zeroed();
        buf.write_u64(0, 11);
        p.write_page(a, &buf).unwrap();
        assert_eq!(p.inner().stats().writes(), 0, "write buffered");
        // Touching b evicts a, forcing the write-back.
        p.read_page(b).unwrap();
        assert_eq!(p.inner().stats().writes(), 1);
        assert_eq!(p.pool_stats().write_backs(), 1);
        // Data must survive the round trip.
        p.sync().unwrap();
        assert_eq!(p.read_page(a).unwrap().read_u64(0), 11);
    }

    #[test]
    fn sync_flushes_all_dirty() {
        let mut p = pool(8);
        let ids: Vec<_> = (0..5).map(|_| p.allocate().unwrap()).collect();
        for (i, id) in ids.iter().enumerate() {
            let mut b = PageBuf::zeroed();
            b.write_u64(0, i as u64);
            p.write_page(*id, &b).unwrap();
        }
        assert_eq!(p.inner().stats().writes(), 0);
        p.sync().unwrap();
        assert_eq!(p.inner().stats().writes(), 5);
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(p.read_page(*id).unwrap().read_u64(0), i as u64);
        }
    }

    #[test]
    fn free_discards_cached_copy() {
        let mut p = pool(4);
        let a = p.allocate().unwrap();
        let mut b = PageBuf::zeroed();
        b.write_u64(0, 5);
        p.write_page(a, &b).unwrap();
        p.free(a).unwrap();
        // Freed page is gone; no write-back occurred.
        assert_eq!(p.inner().stats().writes(), 0);
        assert!(p.read_page(a).is_err());
    }

    #[test]
    fn zero_capacity_pool_is_a_passthrough() {
        let mut p = pool(0);
        let a = p.allocate().unwrap();
        let mut b = PageBuf::zeroed();
        b.write_u64(0, 9);
        p.write_page(a, &b).unwrap();
        assert_eq!(p.inner().stats().writes(), 1);
        p.read_page(a).unwrap();
        p.read_page(a).unwrap();
        assert_eq!(p.inner().stats().reads(), 2);
        assert_eq!(p.resident(), 0);
    }

    #[test]
    fn bigger_pool_absorbs_more_reads() {
        // The Figure 2 mechanism in miniature: same access pattern, larger
        // cache, fewer device reads.
        let run = |cap: usize| {
            let mut p = pool(cap);
            let ids: Vec<_> = (0..16).map(|_| p.allocate().unwrap()).collect();
            for round in 0..10 {
                for id in &ids {
                    let _ = round;
                    p.read_page(*id).unwrap();
                }
            }
            p.inner().stats().reads()
        };
        let small = run(2);
        let large = run(16);
        assert!(large < small, "large pool {large} >= small pool {small}");
        assert_eq!(large, 16, "fully cached after first round");
    }

    #[test]
    fn evictions_emit_trace_events() {
        use rum_core::trace::MemorySink;
        let mut p = pool(1);
        let sink = MemorySink::shared();
        p.set_trace_sink(sink.clone());
        let a = p.allocate().unwrap();
        let b = p.allocate().unwrap();
        let mut buf = PageBuf::zeroed();
        buf.write_u64(0, 7);
        p.write_page(a, &buf).unwrap();
        p.read_page(b).unwrap(); // evicts dirty a
        p.read_page(a).unwrap(); // evicts clean b
        let events = sink.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, EventKind::BufferEviction);
        assert_eq!(events[0].field("page"), Some(a.0));
        assert_eq!(events[0].field("dirty"), Some(1));
        assert_eq!(events[0].bytes(), rum_core::PAGE_SIZE as u64);
        assert_eq!(events[1].field("page"), Some(b.0));
        assert_eq!(events[1].field("dirty"), Some(0));
        assert_eq!(events[1].bytes(), 0);
    }

    #[test]
    fn writes_coalesce_in_pool() {
        // Many logical writes to the same page reach the device once.
        let mut p = pool(2);
        let a = p.allocate().unwrap();
        for v in 0..100 {
            let mut b = PageBuf::zeroed();
            b.write_u64(0, v);
            p.write_page(a, &b).unwrap();
        }
        p.sync().unwrap();
        assert_eq!(p.inner().stats().writes(), 1);
        assert_eq!(p.read_page(a).unwrap().read_u64(0), 99);
    }
}
