//! Instrumented block devices.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rum_core::{Result, RumError};

use crate::page::{PageBuf, PageId};

/// Raw device-level I/O counters (what actually reached the device, after
/// any caching above it).
#[derive(Debug, Default)]
pub struct IoStats {
    pub page_reads: AtomicU64,
    pub page_writes: AtomicU64,
    pub allocations: AtomicU64,
    pub frees: AtomicU64,
    /// Simulated device time spent, nanoseconds.
    pub sim_time_ns: AtomicU64,
}

impl IoStats {
    pub fn reads(&self) -> u64 {
        self.page_reads.load(Ordering::Relaxed)
    }
    pub fn writes(&self) -> u64 {
        self.page_writes.load(Ordering::Relaxed)
    }
    pub fn allocs(&self) -> u64 {
        self.allocations.load(Ordering::Relaxed)
    }
    pub fn freed(&self) -> u64 {
        self.frees.load(Ordering::Relaxed)
    }
    pub fn sim_ns(&self) -> u64 {
        self.sim_time_ns.load(Ordering::Relaxed)
    }
    pub fn reset(&self) {
        self.page_reads.store(0, Ordering::Relaxed);
        self.page_writes.store(0, Ordering::Relaxed);
        self.allocations.store(0, Ordering::Relaxed);
        self.frees.store(0, Ordering::Relaxed);
        self.sim_time_ns.store(0, Ordering::Relaxed);
    }
}

/// A page-granular block device.
///
/// Devices are `Send` so the access methods built on them can be measured
/// on worker threads by the parallel suite runner.
pub trait BlockDevice: Send {
    /// Allocate a fresh zeroed page.
    fn allocate(&mut self) -> Result<PageId>;

    /// Return a page to the free list.
    fn free(&mut self, id: PageId) -> Result<()>;

    /// Copy a page's contents out of the device.
    fn read_page(&mut self, id: PageId) -> Result<PageBuf>;

    /// Replace a page's contents.
    fn write_page(&mut self, id: PageId, page: &PageBuf) -> Result<()>;

    /// Number of live (allocated, not freed) pages.
    fn live_pages(&self) -> usize;

    /// Device-level counters.
    fn stats(&self) -> &Arc<IoStats>;

    /// Push any cached dirty state down to durable storage (no-op for
    /// devices without caching).
    fn sync(&mut self) -> Result<()> {
        Ok(())
    }
}

/// A simple instrumented in-memory device with a free list.
pub struct MemDevice {
    pages: Vec<Option<PageBuf>>,
    free_list: Vec<PageId>,
    stats: Arc<IoStats>,
}

impl MemDevice {
    pub fn new() -> Self {
        MemDevice {
            pages: Vec::new(),
            free_list: Vec::new(),
            stats: Arc::new(IoStats::default()),
        }
    }

    fn slot(&self, id: PageId) -> Result<()> {
        match self.pages.get(id.index()) {
            Some(Some(_)) => Ok(()),
            Some(None) => Err(RumError::Storage(format!("{id} is freed"))),
            None => Err(RumError::Storage(format!("{id} out of bounds"))),
        }
    }
}

impl Default for MemDevice {
    fn default() -> Self {
        Self::new()
    }
}

impl BlockDevice for MemDevice {
    fn allocate(&mut self) -> Result<PageId> {
        self.stats.allocations.fetch_add(1, Ordering::Relaxed);
        if let Some(id) = self.free_list.pop() {
            self.pages[id.index()] = Some(PageBuf::zeroed());
            Ok(id)
        } else {
            let id = PageId(self.pages.len() as u64);
            self.pages.push(Some(PageBuf::zeroed()));
            Ok(id)
        }
    }

    fn free(&mut self, id: PageId) -> Result<()> {
        self.slot(id)?;
        self.pages[id.index()] = None;
        self.free_list.push(id);
        self.stats.frees.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn read_page(&mut self, id: PageId) -> Result<PageBuf> {
        self.slot(id)?;
        self.stats.page_reads.fetch_add(1, Ordering::Relaxed);
        Ok(self.pages[id.index()]
            .clone()
            .expect("slot() verified a live page buffer at this index"))
    }

    fn write_page(&mut self, id: PageId, page: &PageBuf) -> Result<()> {
        self.slot(id)?;
        self.stats.page_writes.fetch_add(1, Ordering::Relaxed);
        self.pages[id.index()] = Some(page.clone());
        Ok(())
    }

    fn live_pages(&self) -> usize {
        self.pages.len() - self.free_list.len()
    }

    fn stats(&self) -> &Arc<IoStats> {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_write_read_roundtrip() {
        let mut d = MemDevice::new();
        let id = d.allocate().unwrap();
        let mut p = PageBuf::zeroed();
        p.write_u64(0, 77);
        d.write_page(id, &p).unwrap();
        let back = d.read_page(id).unwrap();
        assert_eq!(back.read_u64(0), 77);
        assert_eq!(d.stats().reads(), 1);
        assert_eq!(d.stats().writes(), 1);
    }

    #[test]
    fn freed_pages_are_recycled_zeroed() {
        let mut d = MemDevice::new();
        let a = d.allocate().unwrap();
        let mut p = PageBuf::zeroed();
        p.write_u64(0, 1);
        d.write_page(a, &p).unwrap();
        d.free(a).unwrap();
        assert_eq!(d.live_pages(), 0);
        let b = d.allocate().unwrap();
        assert_eq!(a, b, "free list should recycle the slot");
        assert_eq!(
            d.read_page(b).unwrap().read_u64(0),
            0,
            "recycled page zeroed"
        );
    }

    #[test]
    fn access_to_freed_page_errors() {
        let mut d = MemDevice::new();
        let a = d.allocate().unwrap();
        d.free(a).unwrap();
        assert!(d.read_page(a).is_err());
        assert!(d.write_page(a, &PageBuf::zeroed()).is_err());
        assert!(d.free(a).is_err(), "double free must error");
    }

    #[test]
    fn out_of_bounds_errors() {
        let mut d = MemDevice::new();
        assert!(d.read_page(PageId(5)).is_err());
    }

    #[test]
    fn live_page_accounting() {
        let mut d = MemDevice::new();
        let ids: Vec<_> = (0..10).map(|_| d.allocate().unwrap()).collect();
        assert_eq!(d.live_pages(), 10);
        for id in &ids[..4] {
            d.free(*id).unwrap();
        }
        assert_eq!(d.live_pages(), 6);
        assert_eq!(d.stats().allocs(), 10);
        assert_eq!(d.stats().freed(), 4);
    }
}
