//! Open-addressing hash table over packed pages — Table 1's "Perfect Hash
//! Index" idealization: with a healthy load factor, a point query touches
//! one page in expectation.

use std::sync::Arc;

use rum_core::{
    check_bulk_input, AccessMethod, CostTracker, DataClass, Key, Record, Result, RumError,
    SpaceProfile, Value, RECORDS_PER_PAGE, RECORD_SIZE,
};
use rum_storage::{MemDevice, PageBuf, PageId, Pager};

use crate::hash64;

/// Slot marker: never used by a live record.
const EMPTY: Key = Key::MAX;
/// Slot marker: a deleted slot that probes must walk through.
const GRAVE: Key = Key::MAX - 1;

/// Default target load factor for sizing.
const DEFAULT_LOAD: f64 = 0.5;
/// Grow when the occupancy (live + graves) exceeds this.
const GROW_AT: f64 = 0.85;

/// A linear-probing hash table of 16-byte slots packed 256 to a page.
pub struct StaticHash {
    pager: Pager<MemDevice>,
    tracker: Arc<CostTracker>,
    pages: Vec<PageId>,
    /// Total slots (pages × 256); always a power of two.
    slots: usize,
    live: usize,
    /// Live + tombstones: what drives probe lengths and growth.
    occupied: usize,
    target_load: f64,
}

impl StaticHash {
    /// An empty table sized for ~64 records at the default load factor.
    pub fn new() -> Self {
        Self::with_capacity(64, DEFAULT_LOAD)
    }

    /// A table pre-sized for `expected` records at `load` occupancy.
    pub fn with_capacity(expected: usize, load: f64) -> Self {
        assert!((0.0..1.0).contains(&load) && load > 0.0, "bad load factor");
        let tracker = CostTracker::new();
        let mut pager = Pager::new(MemDevice::new(), Arc::clone(&tracker));
        let slots = Self::slots_for(expected, load);
        let pages = Self::fresh_pages(&mut pager, slots).expect("initial allocation");
        tracker.reset();
        StaticHash {
            pager,
            tracker,
            pages,
            slots,
            live: 0,
            occupied: 0,
            target_load: load,
        }
    }

    fn slots_for(expected: usize, load: f64) -> usize {
        let want = ((expected.max(1) as f64 / load).ceil() as usize).max(RECORDS_PER_PAGE);
        want.next_power_of_two()
    }

    fn fresh_pages(pager: &mut Pager<MemDevice>, slots: usize) -> Result<Vec<PageId>> {
        let n_pages = slots / RECORDS_PER_PAGE;
        let mut pages = Vec::with_capacity(n_pages);
        let empty = Self::empty_page();
        for _ in 0..n_pages {
            let id = pager.allocate()?;
            pager.write(id, DataClass::Base, &empty)?;
            pages.push(id);
        }
        Ok(pages)
    }

    fn empty_page() -> PageBuf {
        let mut p = PageBuf::zeroed();
        let r = Record::new(EMPTY, 0);
        for i in 0..RECORDS_PER_PAGE {
            r.encode_into(&mut p[i * RECORD_SIZE..(i + 1) * RECORD_SIZE]);
        }
        p
    }

    /// Current total slot count.
    pub fn capacity(&self) -> usize {
        self.slots
    }

    #[inline]
    fn home_slot(&self, key: Key) -> usize {
        (hash64(key) >> (64 - self.slots.trailing_zeros() as u64)) as usize
    }

    fn read_slot_page(&mut self, slot: usize) -> Result<(usize, PageBuf)> {
        let page_idx = slot / RECORDS_PER_PAGE;
        let buf = self.pager.read(self.pages[page_idx], DataClass::Base)?;
        Ok((page_idx, buf))
    }

    fn slot_record(buf: &PageBuf, slot: usize) -> Record {
        let off = (slot % RECORDS_PER_PAGE) * RECORD_SIZE;
        Record::decode(&buf[off..off + RECORD_SIZE])
    }

    fn set_slot(buf: &mut PageBuf, slot: usize, rec: Record) {
        let off = (slot % RECORDS_PER_PAGE) * RECORD_SIZE;
        rec.encode_into(&mut buf[off..off + RECORD_SIZE]);
    }

    /// Probe for `key`. Returns `(slot, Some(record))` on a hit, or
    /// `(first_insertable_slot, None)` when the chain ends at EMPTY.
    /// Each distinct page along the probe chain charges one read.
    fn probe(&mut self, key: Key) -> Result<(usize, Option<Record>)> {
        debug_assert!(key < GRAVE, "keys u64::MAX-1 and u64::MAX are reserved");
        let mut slot = self.home_slot(key);
        let mut first_free: Option<usize> = None;
        let (mut cur_page, mut buf) = self.read_slot_page(slot)?;
        for _ in 0..self.slots {
            let page_idx = slot / RECORDS_PER_PAGE;
            if page_idx != cur_page {
                let (p, b) = self.read_slot_page(slot)?;
                cur_page = p;
                buf = b;
            }
            let rec = Self::slot_record(&buf, slot);
            match rec.key {
                k if k == key => return Ok((slot, Some(rec))),
                EMPTY => return Ok((first_free.unwrap_or(slot), None)),
                GRAVE if first_free.is_none() => {
                    first_free = Some(slot);
                }
                _ => {}
            }
            slot = (slot + 1) & (self.slots - 1);
        }
        Err(RumError::Corrupt("probe wrapped the whole table".into()))
    }

    /// Overwrite one slot (read-modify-write of its page).
    fn write_slot(&mut self, slot: usize, rec: Record) -> Result<()> {
        let (page_idx, mut buf) = self.read_slot_page(slot)?;
        Self::set_slot(&mut buf, slot, rec);
        self.pager
            .write(self.pages[page_idx], DataClass::Base, &buf)
    }

    /// Double the table and rehash everything (also clears tombstones).
    fn grow(&mut self) -> Result<()> {
        let old_pages = std::mem::take(&mut self.pages);
        let mut records = Vec::with_capacity(self.live);
        for id in &old_pages {
            let buf = self.pager.read(*id, DataClass::Base)?;
            for i in 0..RECORDS_PER_PAGE {
                let r = Record::decode(&buf[i * RECORD_SIZE..(i + 1) * RECORD_SIZE]);
                if r.key < GRAVE {
                    records.push(r);
                }
            }
        }
        for id in old_pages {
            self.pager.free(id)?;
        }
        self.slots *= 2;
        self.pages = Self::fresh_pages(&mut self.pager, self.slots)?;
        self.occupied = 0;
        self.live = 0;
        // Re-insert without the growth check (the new table fits them all).
        for r in records {
            let (slot, existing) = self.probe(r.key)?;
            debug_assert!(existing.is_none());
            self.write_slot(slot, r)?;
            self.live += 1;
            self.occupied += 1;
        }
        Ok(())
    }

    fn maybe_grow(&mut self) -> Result<()> {
        if (self.occupied + 1) as f64 / self.slots as f64 > GROW_AT {
            self.grow()?;
        }
        Ok(())
    }
}

impl Default for StaticHash {
    fn default() -> Self {
        Self::new()
    }
}

impl AccessMethod for StaticHash {
    fn name(&self) -> String {
        "hash-index".into()
    }

    fn len(&self) -> usize {
        self.live
    }

    fn tracker(&self) -> &Arc<CostTracker> {
        &self.tracker
    }

    fn space_profile(&self) -> SpaceProfile {
        SpaceProfile::from_physical(self.live, self.pager.physical_bytes())
    }

    fn get_impl(&mut self, key: Key) -> Result<Option<Value>> {
        Ok(self.probe(key)?.1.map(|r| r.value))
    }

    fn range_impl(&mut self, lo: Key, hi: Key) -> Result<Vec<Record>> {
        // Hashing destroys order: a range query is a full scan (Table 1's
        // O(N/B) row for the hash index).
        let mut out = Vec::new();
        for idx in 0..self.pages.len() {
            let buf = self.pager.read(self.pages[idx], DataClass::Base)?;
            for i in 0..RECORDS_PER_PAGE {
                let r = Record::decode(&buf[i * RECORD_SIZE..(i + 1) * RECORD_SIZE]);
                if r.key < GRAVE && r.key >= lo && r.key <= hi {
                    out.push(r);
                }
            }
        }
        out.sort_unstable();
        Ok(out)
    }

    fn insert_impl(&mut self, key: Key, value: Value) -> Result<()> {
        if key >= GRAVE {
            return Err(RumError::InvalidArgument(
                "keys u64::MAX-1 and u64::MAX are reserved slot markers".into(),
            ));
        }
        self.maybe_grow()?;
        let (slot, existing) = self.probe(key)?;
        self.write_slot(slot, Record::new(key, value))?;
        if existing.is_none() {
            self.live += 1;
            self.occupied += 1;
        }
        Ok(())
    }

    fn update_impl(&mut self, key: Key, value: Value) -> Result<bool> {
        match self.probe(key)? {
            (slot, Some(_)) => {
                self.write_slot(slot, Record::new(key, value))?;
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    fn delete_impl(&mut self, key: Key) -> Result<bool> {
        match self.probe(key)? {
            (slot, Some(_)) => {
                self.write_slot(slot, Record::new(GRAVE, 0))?;
                self.live -= 1;
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    fn bulk_load_impl(&mut self, records: &[Record]) -> Result<()> {
        check_bulk_input(records)?;
        if records.last().map(|r| r.key >= GRAVE).unwrap_or(false) {
            return Err(RumError::InvalidArgument(
                "keys u64::MAX-1 and u64::MAX are reserved slot markers".into(),
            ));
        }
        for id in std::mem::take(&mut self.pages) {
            self.pager.free(id)?;
        }
        self.slots = Self::slots_for(records.len(), self.target_load);
        self.pages = Self::fresh_pages(&mut self.pager, self.slots)?;
        self.live = 0;
        self.occupied = 0;
        for r in records {
            let (slot, existing) = self.probe(r.key)?;
            debug_assert!(existing.is_none(), "bulk input keys are unique");
            self.write_slot(slot, *r)?;
            self.live += 1;
            self.occupied += 1;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loaded(n: u64) -> StaticHash {
        let recs: Vec<Record> = (0..n).map(|k| Record::new(k, k * 3)).collect();
        let mut h = StaticHash::with_capacity(n as usize, DEFAULT_LOAD);
        h.bulk_load(&recs).unwrap();
        h
    }

    #[test]
    fn crud_roundtrip() {
        let mut h = StaticHash::new();
        h.insert(1, 10).unwrap();
        h.insert(2, 20).unwrap();
        assert_eq!(h.get(1).unwrap(), Some(10));
        assert_eq!(h.get(3).unwrap(), None);
        assert!(h.update(2, 22).unwrap());
        assert!(!h.update(3, 0).unwrap());
        assert!(h.delete(1).unwrap());
        assert!(!h.delete(1).unwrap());
        assert_eq!(h.get(1).unwrap(), None);
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn insert_is_upsert() {
        let mut h = StaticHash::new();
        h.insert(5, 1).unwrap();
        h.insert(5, 2).unwrap();
        assert_eq!(h.len(), 1);
        assert_eq!(h.get(5).unwrap(), Some(2));
    }

    #[test]
    fn point_query_is_constant_cost() {
        // O(1): the probe cost must not grow with N.
        let cost = |n: u64| {
            let mut h = loaded(n);
            let before = h.tracker().snapshot();
            for k in (0..n).step_by((n / 64) as usize) {
                h.get(k).unwrap();
            }
            h.tracker().since(&before).page_reads as f64 / 64.0
        };
        let small = cost(1 << 10);
        let large = cost(1 << 16);
        assert!(small <= 1.6, "expected ~1 page per probe, got {small}");
        assert!(large <= 1.6, "expected ~1 page per probe, got {large}");
    }

    #[test]
    fn range_is_a_full_scan() {
        let mut h = loaded(10_000);
        let before = h.tracker().snapshot();
        let rs = h.range(100, 110).unwrap();
        assert_eq!(rs.len(), 11);
        let keys: Vec<u64> = rs.iter().map(|r| r.key).collect();
        assert_eq!(keys, (100..=110).collect::<Vec<_>>());
        let reads = h.tracker().since(&before).page_reads as usize;
        assert_eq!(reads, h.capacity() / RECORDS_PER_PAGE, "every page read");
    }

    #[test]
    fn grows_transparently() {
        let mut h = StaticHash::with_capacity(16, 0.5);
        let initial_cap = h.capacity();
        for k in 0..10_000u64 {
            h.insert(k, k).unwrap();
        }
        assert!(h.capacity() > initial_cap);
        assert_eq!(h.len(), 10_000);
        for k in (0..10_000u64).step_by(397) {
            assert_eq!(h.get(k).unwrap(), Some(k));
        }
    }

    #[test]
    fn tombstones_keep_probe_chains_intact() {
        // Force collisions into a tiny table, then delete a middle link.
        let mut h = StaticHash::with_capacity(16, 0.5);
        for k in 0..100u64 {
            h.insert(k, k).unwrap();
        }
        for k in (0..100u64).step_by(2) {
            assert!(h.delete(k).unwrap());
        }
        for k in (1..100u64).step_by(2) {
            assert_eq!(h.get(k).unwrap(), Some(k), "odd key {k} must survive");
        }
        assert_eq!(h.len(), 50);
    }

    #[test]
    fn tombstone_slots_are_reused() {
        let mut h = StaticHash::with_capacity(64, 0.5);
        for k in 0..30u64 {
            h.insert(k, k).unwrap();
        }
        for k in 0..30u64 {
            h.delete(k).unwrap();
        }
        for k in 0..30u64 {
            h.insert(k, k + 1).unwrap();
        }
        assert_eq!(h.len(), 30);
        assert_eq!(h.get(7).unwrap(), Some(8));
    }

    #[test]
    fn reserved_keys_rejected() {
        let mut h = StaticHash::new();
        assert!(h.insert(u64::MAX, 0).is_err());
        assert!(h.insert(u64::MAX - 1, 0).is_err());
    }

    #[test]
    fn space_reflects_load_factor() {
        let h = loaded(1 << 14);
        let mo = h.space_profile().space_amplification();
        // At a 0.5 target load, MO ≈ 2.
        assert!((1.8..=4.1).contains(&mo), "mo = {mo}");
    }

    #[test]
    fn model_check_random_ops() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(31);
        let mut h = StaticHash::with_capacity(16, 0.5);
        let mut model = std::collections::HashMap::new();
        for step in 0..5000u64 {
            let k = rng.gen_range(0..1000u64);
            match rng.gen_range(0..5) {
                0 | 1 => {
                    h.insert(k, step).unwrap();
                    model.insert(k, step);
                }
                2 => {
                    assert_eq!(h.update(k, step).unwrap(), model.contains_key(&k));
                    model.entry(k).and_modify(|v| *v = step);
                }
                3 => {
                    assert_eq!(h.delete(k).unwrap(), model.remove(&k).is_some());
                }
                _ => {
                    assert_eq!(h.get(k).unwrap(), model.get(&k).copied());
                }
            }
            assert_eq!(h.len(), model.len());
        }
    }
}
