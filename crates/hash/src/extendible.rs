//! Extendible hashing: a dynamic hash index whose in-memory directory
//! doubles as buckets split, so growth never rehashes the whole table.
//!
//! Directory entries are auxiliary data (charged byte-granular on every
//! lookup and counted in MO); bucket pages hold the records (base data).

use std::sync::Arc;

use rum_core::{
    check_bulk_input, AccessMethod, CostTracker, DataClass, Key, Record, Result, RumError,
    SpaceProfile, Value, RECORD_SIZE,
};
use rum_storage::{MemDevice, PageBuf, PageId, Pager};

use crate::hash64;

/// Per-bucket header: local depth (u16) + count (u16) + padding.
const HEADER: usize = 8;
/// Records per bucket page.
const BUCKET_CAP: usize = (rum_core::PAGE_SIZE - HEADER) / RECORD_SIZE;

/// Maximum global depth (2^20 directory entries ≈ 8 MiB of pointers).
const MAX_DEPTH: u32 = 20;

#[derive(Clone, Debug)]
struct Bucket {
    local_depth: u32,
    records: Vec<Record>,
}

impl Bucket {
    fn decode(buf: &PageBuf) -> Bucket {
        let local_depth = buf.read_u16(0) as u32;
        let count = buf.read_u16(2) as usize;
        let records = (0..count.min(BUCKET_CAP))
            .map(|i| Record::decode(&buf[HEADER + i * RECORD_SIZE..HEADER + (i + 1) * RECORD_SIZE]))
            .collect();
        Bucket {
            local_depth,
            records,
        }
    }

    fn encode(&self) -> PageBuf {
        debug_assert!(self.records.len() <= BUCKET_CAP);
        let mut buf = PageBuf::zeroed();
        buf.write_u16(0, self.local_depth as u16);
        buf.write_u16(2, self.records.len() as u16);
        for (i, r) in self.records.iter().enumerate() {
            r.encode_into(&mut buf[HEADER + i * RECORD_SIZE..HEADER + (i + 1) * RECORD_SIZE]);
        }
        buf
    }
}

/// The extendible hash index.
pub struct ExtendibleHash {
    pager: Pager<MemDevice>,
    tracker: Arc<CostTracker>,
    /// `2^global_depth` entries; entry `i` points at the bucket page for
    /// hash prefixes equal to `i`.
    directory: Vec<PageId>,
    global_depth: u32,
    live: usize,
}

impl ExtendibleHash {
    pub fn new() -> Self {
        let tracker = CostTracker::new();
        let mut pager = Pager::new(MemDevice::new(), Arc::clone(&tracker));
        let first = pager.allocate().expect("first bucket");
        let bucket = Bucket {
            local_depth: 0,
            records: Vec::new(),
        };
        pager
            .write(first, DataClass::Base, &bucket.encode())
            .expect("first bucket write");
        tracker.reset();
        ExtendibleHash {
            pager,
            tracker,
            directory: vec![first],
            global_depth: 0,
            live: 0,
        }
    }

    pub fn global_depth(&self) -> u32 {
        self.global_depth
    }

    pub fn directory_size(&self) -> usize {
        self.directory.len()
    }

    /// Directory slot for `key` at the current global depth: the top
    /// `global_depth` bits of the hash.
    #[inline]
    fn dir_slot(&self, key: Key) -> usize {
        if self.global_depth == 0 {
            0
        } else {
            (hash64(key) >> (64 - self.global_depth)) as usize
        }
    }

    /// Charge a directory lookup (in-memory auxiliary metadata).
    fn charge_dir(&self) {
        self.tracker.read(DataClass::Aux, 8);
    }

    fn read_bucket(&mut self, page: PageId) -> Result<Bucket> {
        let buf = self.pager.read(page, DataClass::Base)?;
        Ok(Bucket::decode(&buf))
    }

    fn write_bucket(&mut self, page: PageId, bucket: &Bucket) -> Result<()> {
        self.pager.write(page, DataClass::Base, &bucket.encode())
    }

    /// Split the bucket at directory slot `slot` once, doubling the
    /// directory if its local depth equals the global depth.
    fn split(&mut self, slot: usize) -> Result<()> {
        let page = self.directory[slot];
        let bucket = self.read_bucket(page)?;
        if bucket.local_depth == self.global_depth {
            if self.global_depth >= MAX_DEPTH {
                return Err(RumError::CapacityExceeded(format!(
                    "extendible hash directory at max depth {MAX_DEPTH}"
                )));
            }
            // Double the directory: entry i maps to old entry i >> 1.
            let old = std::mem::take(&mut self.directory);
            self.directory = Vec::with_capacity(old.len() * 2);
            for &p in &old {
                self.directory.push(p);
                self.directory.push(p);
            }
            self.global_depth += 1;
        }
        // Re-locate the directory range that points at this bucket.
        let new_depth = bucket.local_depth + 1;
        let shift = 64 - new_depth;
        let new_page = self.pager.allocate()?;
        let (mut zero, mut one) = (Vec::new(), Vec::new());
        for r in bucket.records {
            if (hash64(r.key) >> shift) & 1 == 0 {
                zero.push(r);
            } else {
                one.push(r);
            }
        }
        self.write_bucket(
            page,
            &Bucket {
                local_depth: new_depth,
                records: zero,
            },
        )?;
        self.write_bucket(
            new_page,
            &Bucket {
                local_depth: new_depth,
                records: one,
            },
        )?;
        // Rewire the directory: every entry that pointed at the split
        // bucket re-routes by its own copy of the new depth bit (bit
        // `new_depth - 1` from the top of the slot index).
        for i in 0..self.directory.len() {
            if self.directory[i] == page {
                let bit = (i >> (self.global_depth - new_depth)) & 1;
                if bit == 1 {
                    self.directory[i] = new_page;
                }
            }
        }
        Ok(())
    }

    fn insert_record(&mut self, rec: Record) -> Result<bool> {
        loop {
            self.charge_dir();
            let slot = self.dir_slot(rec.key);
            let page = self.directory[slot];
            let mut bucket = self.read_bucket(page)?;
            if let Some(r) = bucket.records.iter_mut().find(|r| r.key == rec.key) {
                r.value = rec.value;
                self.write_bucket(page, &bucket)?;
                return Ok(false);
            }
            if bucket.records.len() < BUCKET_CAP {
                bucket.records.push(rec);
                self.write_bucket(page, &bucket)?;
                return Ok(true);
            }
            self.split(slot)?;
        }
    }
}

impl Default for ExtendibleHash {
    fn default() -> Self {
        Self::new()
    }
}

impl AccessMethod for ExtendibleHash {
    fn name(&self) -> String {
        "extendible-hash".into()
    }

    fn len(&self) -> usize {
        self.live
    }

    fn tracker(&self) -> &Arc<CostTracker> {
        &self.tracker
    }

    fn space_profile(&self) -> SpaceProfile {
        let physical = self.pager.physical_bytes() + (self.directory.len() * 8) as u64;
        SpaceProfile::from_physical(self.live, physical)
    }

    fn get_impl(&mut self, key: Key) -> Result<Option<Value>> {
        self.charge_dir();
        let slot = self.dir_slot(key);
        let page = self.directory[slot];
        let bucket = self.read_bucket(page)?;
        Ok(bucket
            .records
            .iter()
            .find(|r| r.key == key)
            .map(|r| r.value))
    }

    fn range_impl(&mut self, lo: Key, hi: Key) -> Result<Vec<Record>> {
        // Scan each distinct bucket once.
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        let pages: Vec<PageId> = self.directory.clone();
        for page in pages {
            if !seen.insert(page) {
                continue;
            }
            let bucket = self.read_bucket(page)?;
            out.extend(
                bucket
                    .records
                    .into_iter()
                    .filter(|r| r.key >= lo && r.key <= hi),
            );
        }
        out.sort_unstable();
        Ok(out)
    }

    fn insert_impl(&mut self, key: Key, value: Value) -> Result<()> {
        if self.insert_record(Record::new(key, value))? {
            self.live += 1;
        }
        Ok(())
    }

    fn update_impl(&mut self, key: Key, value: Value) -> Result<bool> {
        self.charge_dir();
        let slot = self.dir_slot(key);
        let page = self.directory[slot];
        let mut bucket = self.read_bucket(page)?;
        if let Some(r) = bucket.records.iter_mut().find(|r| r.key == key) {
            r.value = value;
            self.write_bucket(page, &bucket)?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    fn delete_impl(&mut self, key: Key) -> Result<bool> {
        self.charge_dir();
        let slot = self.dir_slot(key);
        let page = self.directory[slot];
        let mut bucket = self.read_bucket(page)?;
        let before = bucket.records.len();
        bucket.records.retain(|r| r.key != key);
        if bucket.records.len() != before {
            self.write_bucket(page, &bucket)?;
            self.live -= 1;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    fn bulk_load_impl(&mut self, records: &[Record]) -> Result<()> {
        check_bulk_input(records)?;
        // Rebuild in place, keeping the SAME tracker (callers hold clones
        // of it): reset to a single bucket, then insert — splits pre-size
        // the directory quickly.
        let mut pager = Pager::new(MemDevice::new(), Arc::clone(&self.tracker));
        let first = pager.allocate()?;
        pager.write(
            first,
            DataClass::Base,
            &Bucket {
                local_depth: 0,
                records: Vec::new(),
            }
            .encode(),
        )?;
        self.pager = pager;
        self.directory = vec![first];
        self.global_depth = 0;
        self.live = 0;
        for r in records {
            if self.insert_record(*r)? {
                self.live += 1;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crud_roundtrip() {
        let mut h = ExtendibleHash::new();
        h.insert(1, 10).unwrap();
        h.insert(2, 20).unwrap();
        assert_eq!(h.get(1).unwrap(), Some(10));
        assert_eq!(h.get(3).unwrap(), None);
        assert!(h.update(2, 22).unwrap());
        assert!(h.delete(1).unwrap());
        assert!(!h.delete(1).unwrap());
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn directory_doubles_under_growth() {
        let mut h = ExtendibleHash::new();
        assert_eq!(h.directory_size(), 1);
        for k in 0..20_000u64 {
            h.insert(k, k).unwrap();
        }
        assert!(h.global_depth() >= 6);
        assert_eq!(h.len(), 20_000);
        for k in (0..20_000u64).step_by(997) {
            assert_eq!(h.get(k).unwrap(), Some(k));
        }
    }

    #[test]
    fn point_query_stays_constant_as_it_grows() {
        let cost = |n: u64| {
            let recs: Vec<Record> = (0..n).map(|k| Record::new(k, k)).collect();
            let mut h = ExtendibleHash::new();
            h.bulk_load(&recs).unwrap();
            let before = h.tracker().snapshot();
            for k in (0..n).step_by((n / 64).max(1) as usize) {
                h.get(k).unwrap();
            }
            h.tracker().since(&before).page_reads as f64 / 64.0
        };
        assert!(cost(1 << 10) <= 1.1);
        assert!(cost(1 << 15) <= 1.1, "one bucket page per probe, always");
    }

    #[test]
    fn splits_preserve_all_records() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let mut h = ExtendibleHash::new();
        let mut model = std::collections::HashMap::new();
        for _ in 0..30_000 {
            let k: u64 = rng.gen();
            let v: u64 = rng.gen();
            h.insert(k, v).unwrap();
            model.insert(k, v);
        }
        assert_eq!(h.len(), model.len());
        for (&k, &v) in model.iter().take(500) {
            assert_eq!(h.get(k).unwrap(), Some(v));
        }
    }

    #[test]
    fn range_scans_each_bucket_once() {
        let mut h = ExtendibleHash::new();
        for k in 0..5000u64 {
            h.insert(k, k).unwrap();
        }
        let rs = h.range(100, 120).unwrap();
        let keys: Vec<u64> = rs.iter().map(|r| r.key).collect();
        assert_eq!(keys, (100..=120).collect::<Vec<_>>());
    }

    #[test]
    fn bulk_load_then_query() {
        let recs: Vec<Record> = (0..10_000u64).map(|k| Record::new(k * 7, k)).collect();
        let mut h = ExtendibleHash::new();
        h.bulk_load(&recs).unwrap();
        assert_eq!(h.len(), 10_000);
        assert_eq!(h.get(7 * 123).unwrap(), Some(123));
        assert_eq!(h.get(5).unwrap(), None);
    }

    #[test]
    fn model_check_random_ops() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(41);
        let mut h = ExtendibleHash::new();
        let mut model = std::collections::HashMap::new();
        for step in 0..8000u64 {
            let k = rng.gen_range(0..2000u64);
            match rng.gen_range(0..5) {
                0 | 1 => {
                    h.insert(k, step).unwrap();
                    model.insert(k, step);
                }
                2 => {
                    assert_eq!(h.update(k, step).unwrap(), model.contains_key(&k));
                    model.entry(k).and_modify(|v| *v = step);
                }
                3 => {
                    assert_eq!(h.delete(k).unwrap(), model.remove(&k).is_some());
                }
                _ => {
                    assert_eq!(h.get(k).unwrap(), model.get(&k).copied());
                }
            }
            assert_eq!(h.len(), model.len());
        }
    }

    #[test]
    fn directory_counts_as_aux_space() {
        let mut h = ExtendibleHash::new();
        for k in 0..50_000u64 {
            h.insert(k, k).unwrap();
        }
        let p = h.space_profile();
        assert!(p.aux_bytes > 0);
        let mo = p.space_amplification();
        assert!(mo > 1.0 && mo < 5.0, "mo = {mo}");
    }
}
