//! # rum-hash
//!
//! Hash-based access methods — the *constant-access-cost* family of the
//! paper's read-optimized corner (Figure 1), and Table 1's "Perfect Hash
//! Index" row: O(1) point query and O(1) insert/update/delete, but O(N/B)
//! range queries (hashing destroys order, so a range is a full scan) and a
//! space overhead set by the load factor.
//!
//! Two variants:
//!
//! * [`StaticHash`] — open addressing with linear probing over packed
//!   pages, sized for a target load factor at build time and grown by
//!   rehashing (the paper's "perfect hash" idealization: expected one page
//!   per probe).
//! * [`ExtendibleHash`] — classic dynamic hashing: an in-memory directory
//!   of bucket pages that doubles as buckets split, avoiding full rehashes
//!   at the price of directory space.
//!
//! Key restriction: `u64::MAX` and `u64::MAX - 1` are reserved as the
//! empty/tombstone slot markers in [`StaticHash`].

pub mod extendible;
pub mod statichash;

pub use extendible::ExtendibleHash;
pub use statichash::StaticHash;

/// Fibonacci (multiplicative) hashing: fast, well-distributed for integer
/// keys.
#[inline]
pub fn hash64(key: u64) -> u64 {
    key.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash64_spreads_consecutive_keys() {
        // Consecutive keys should land far apart in the high bits.
        let a = hash64(1) >> 52;
        let b = hash64(2) >> 52;
        let c = hash64(3) >> 52;
        assert!(a != b && b != c && a != c);
    }

    #[test]
    fn hash64_is_deterministic() {
        assert_eq!(hash64(12345), hash64(12345));
    }
}
