//! Property-based differential tests for the hash indexes.

use proptest::prelude::*;
use rum_core::AccessMethod;
use rum_hash::{ExtendibleHash, StaticHash};
use std::collections::HashMap;

#[derive(Clone, Debug)]
enum HOp {
    Insert(u16, u32),
    Update(u16, u32),
    Delete(u16),
    Get(u16),
}

fn op_strategy() -> impl Strategy<Value = HOp> {
    prop_oneof![
        (any::<u16>(), any::<u32>()).prop_map(|(k, v)| HOp::Insert(k, v)),
        (any::<u16>(), any::<u32>()).prop_map(|(k, v)| HOp::Update(k, v)),
        any::<u16>().prop_map(HOp::Delete),
        any::<u16>().prop_map(HOp::Get),
    ]
}

fn run(method: &mut dyn AccessMethod, ops: &[HOp]) {
    let mut model: HashMap<u64, u64> = HashMap::new();
    for op in ops {
        match *op {
            HOp::Insert(k, v) => {
                method.insert(k as u64, v as u64).unwrap();
                model.insert(k as u64, v as u64);
            }
            HOp::Update(k, v) => {
                assert_eq!(
                    method.update(k as u64, v as u64).unwrap(),
                    model.contains_key(&(k as u64))
                );
                model.entry(k as u64).and_modify(|x| *x = v as u64);
            }
            HOp::Delete(k) => {
                assert_eq!(
                    method.delete(k as u64).unwrap(),
                    model.remove(&(k as u64)).is_some()
                );
            }
            HOp::Get(k) => {
                assert_eq!(
                    method.get(k as u64).unwrap(),
                    model.get(&(k as u64)).copied()
                );
            }
        }
        assert_eq!(method.len(), model.len());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn static_hash_matches_model(ops in proptest::collection::vec(op_strategy(), 1..500)) {
        // A tiny initial table exercises growth and tombstone reuse.
        run(&mut StaticHash::with_capacity(8, 0.5), &ops);
    }

    #[test]
    fn extendible_hash_matches_model(ops in proptest::collection::vec(op_strategy(), 1..500)) {
        run(&mut ExtendibleHash::new(), &ops);
    }
}
