//! Database cracking: the column partitions itself a little more on every
//! query, converging from scan cost toward index cost.

use std::collections::{BTreeMap, HashSet};
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rum_core::{
    check_bulk_input, AccessMethod, CostTracker, DataClass, Key, Record, Result, SpaceProfile,
    Value, RECORD_SIZE,
};

const CELL: u64 = RECORD_SIZE as u64;

/// Cracking knobs.
#[derive(Clone, Copy, Debug)]
pub struct CrackConfig {
    /// Add a random pivot alongside each query pivot (stochastic cracking,
    /// robust against sequential query patterns).
    pub stochastic: bool,
    /// Pending-insert buffer size before it is folded into the cracked
    /// region (which resets the cracker index — the simple
    /// "forget and re-crack" update strategy).
    pub pending_threshold: usize,
    /// Seed for stochastic pivots.
    pub seed: u64,
}

impl Default for CrackConfig {
    fn default() -> Self {
        CrackConfig {
            stochastic: false,
            pending_threshold: 4096,
            seed: 0xCAC,
        }
    }
}

/// A self-organizing in-memory column.
pub struct CrackedColumn {
    /// The cracked region.
    data: Vec<Record>,
    /// Pivot → first position with `key >= pivot`. The cracker index.
    index: BTreeMap<Key, usize>,
    /// Recent inserts, not yet cracked.
    pending: Vec<Record>,
    /// Keys deleted from the cracked region but not yet compacted away.
    deleted: HashSet<Key>,
    /// Liveness oracle (uncharged, like the LSM's): routes upserts and
    /// short-circuits deletes of absent keys without paying lookup cost
    /// that the real operation would not need.
    live_keys: HashSet<Key>,
    config: CrackConfig,
    rng: StdRng,
    tracker: Arc<CostTracker>,
}

impl CrackedColumn {
    pub fn new() -> Self {
        Self::with_config(CrackConfig::default())
    }

    /// A stochastic cracker (random auxiliary pivots).
    pub fn stochastic(seed: u64) -> Self {
        Self::with_config(CrackConfig {
            stochastic: true,
            seed,
            ..Default::default()
        })
    }

    pub fn with_config(config: CrackConfig) -> Self {
        CrackedColumn {
            data: Vec::new(),
            index: BTreeMap::new(),
            pending: Vec::new(),
            deleted: HashSet::new(),
            live_keys: HashSet::new(),
            rng: StdRng::seed_from_u64(config.seed),
            config,
            tracker: CostTracker::new(),
        }
    }

    /// Number of pieces the column is currently cracked into.
    pub fn pieces(&self) -> usize {
        self.index.len() + 1
    }

    /// Cracker-index footprint in bytes.
    pub fn index_bytes(&self) -> u64 {
        self.index.len() as u64 * 16
    }

    /// Partition `data[lo..hi)` around `pivot`; returns the split point
    /// (first position with `key >= pivot`). Charges the piece read and
    /// the swapped records written.
    fn partition(&mut self, lo: usize, hi: usize, pivot: Key) -> usize {
        self.tracker.read(DataClass::Base, (hi - lo) as u64 * CELL);
        let mut i = lo;
        let mut j = hi;
        let mut swaps = 0u64;
        while i < j {
            if self.data[i].key < pivot {
                i += 1;
            } else {
                j -= 1;
                self.data.swap(i, j);
                swaps += 1;
            }
        }
        if swaps > 0 {
            self.tracker.write(DataClass::Base, 2 * swaps * CELL);
        }
        i
    }

    /// Bounds of the piece that would contain `pivot`.
    fn piece_of(&self, pivot: Key) -> (usize, usize) {
        let lo = self
            .index
            .range(..pivot)
            .next_back()
            .map(|(_, &p)| p)
            .unwrap_or(0);
        let hi = self
            .index
            .range(pivot..)
            .next()
            .map(|(_, &p)| p)
            .unwrap_or(self.data.len());
        (lo, hi)
    }

    /// Crack at `pivot`, returning the first position with
    /// `key >= pivot`. Cracks the enclosing piece (and, stochastically, a
    /// second random pivot inside the larger half).
    fn crack_at(&mut self, pivot: Key) -> usize {
        if let Some(&pos) = self.index.get(&pivot) {
            return pos;
        }
        let (lo, hi) = self.piece_of(pivot);
        // Consulting the cracker index is an auxiliary read.
        self.tracker.read(DataClass::Aux, 32);
        if lo >= hi {
            self.index.insert(pivot, lo);
            self.tracker.write(DataClass::Aux, 16);
            return lo;
        }
        let split = self.partition(lo, hi, pivot);
        self.index.insert(pivot, split);
        self.tracker.write(DataClass::Aux, 16);

        if self.config.stochastic {
            // Crack the larger residual half at one of its own keys.
            let (rlo, rhi) = if split - lo >= hi - split {
                (lo, split)
            } else {
                (split, hi)
            };
            if rhi - rlo > 64 {
                let sample = self.data[self.rng.gen_range(rlo..rhi)].key;
                if sample != pivot && !self.index.contains_key(&sample) {
                    let (plo, phi) = self.piece_of(sample);
                    if plo < phi {
                        let s = self.partition(plo, phi, sample);
                        self.index.insert(sample, s);
                        self.tracker.write(DataClass::Aux, 16);
                    }
                }
            }
        }
        split
    }

    /// Fold pending inserts and deletes into the cracked region, resetting
    /// the cracker index (the simple update strategy: correctness first,
    /// adaptivity restarts).
    fn merge_pending(&mut self) {
        if self.pending.is_empty() && self.deleted.is_empty() {
            return;
        }
        let moved = self.pending.len() as u64;
        // Purge deleted keys from the old region *before* appending the
        // pending buffer: a deleted-then-reinserted key has its stale copy
        // in the region and its live copy in the buffer.
        if !self.deleted.is_empty() {
            let deleted = std::mem::take(&mut self.deleted);
            self.data.retain(|r| !deleted.contains(&r.key));
        }
        self.data.append(&mut self.pending);
        // The fold rewrites the region.
        self.tracker
            .read(DataClass::Base, self.data.len() as u64 * CELL);
        self.tracker
            .write(DataClass::Base, (self.data.len() as u64 + moved) * CELL);
        self.index.clear();
    }

    fn maybe_merge(&mut self) {
        if self.pending.len() > self.config.pending_threshold
            || self.deleted.len() > self.config.pending_threshold
        {
            self.merge_pending();
        }
    }

    /// Scan the pending buffer for `key` (charged).
    fn pending_pos(&self, key: Key) -> Option<usize> {
        let pos = self.pending.iter().position(|r| r.key == key);
        let examined = pos.map(|p| p + 1).unwrap_or(self.pending.len());
        self.tracker.read(DataClass::Base, examined as u64 * CELL);
        pos
    }
}

impl Default for CrackedColumn {
    fn default() -> Self {
        Self::new()
    }
}

impl AccessMethod for CrackedColumn {
    fn name(&self) -> String {
        if self.config.stochastic {
            "stochastic-cracking".into()
        } else {
            "cracked-column".into()
        }
    }

    fn len(&self) -> usize {
        self.live_keys.len()
    }

    fn tracker(&self) -> &Arc<CostTracker> {
        &self.tracker
    }

    fn space_profile(&self) -> SpaceProfile {
        let physical = (self.data.len() + self.pending.len()) as u64 * CELL
            + self.index_bytes()
            + self.deleted.len() as u64 * 8;
        SpaceProfile::from_physical(self.live_keys.len(), physical)
    }

    fn get_impl(&mut self, key: Key) -> Result<Option<Value>> {
        self.maybe_merge();
        if let Some(p) = self.pending_pos(key) {
            return Ok(Some(self.pending[p].value));
        }
        if self.deleted.contains(&key) {
            self.tracker.read(DataClass::Aux, 8);
            return Ok(None);
        }
        let p1 = self.crack_at(key);
        let p2 = self.crack_at(key.saturating_add(1));
        // The piece [p1, p2) now contains exactly the matches.
        self.tracker.read(DataClass::Base, (p2 - p1) as u64 * CELL);
        Ok(self.data[p1..p2].first().map(|r| r.value))
    }

    fn range_impl(&mut self, lo: Key, hi: Key) -> Result<Vec<Record>> {
        self.maybe_merge();
        let p1 = self.crack_at(lo);
        let p2 = if hi == Key::MAX {
            self.data.len()
        } else {
            self.crack_at(hi + 1)
        };
        self.tracker
            .read(DataClass::Base, (p2.saturating_sub(p1)) as u64 * CELL);
        let mut out: Vec<Record> = self.data[p1..p2]
            .iter()
            .filter(|r| !self.deleted.contains(&r.key))
            .copied()
            .collect();
        // Pending inserts are unindexed: scan them too.
        self.tracker
            .read(DataClass::Base, self.pending.len() as u64 * CELL);
        out.extend(
            self.pending
                .iter()
                .filter(|r| r.key >= lo && r.key <= hi)
                .copied(),
        );
        out.sort_unstable();
        Ok(out)
    }

    fn insert_impl(&mut self, key: Key, value: Value) -> Result<()> {
        // Upsert: route to update when the key is live.
        if self.live_keys.contains(&key) {
            self.update_impl(key, value)?;
            return Ok(());
        }
        // NB: a key surviving in `deleted` keeps hiding any stale copy in
        // the cracked region; the fresh copy lives in `pending`, which all
        // read paths consult first.
        self.pending.push(Record::new(key, value));
        self.tracker.write(DataClass::Base, CELL);
        self.live_keys.insert(key);
        self.maybe_merge();
        Ok(())
    }

    fn update_impl(&mut self, key: Key, value: Value) -> Result<bool> {
        if !self.live_keys.contains(&key) {
            return Ok(false);
        }
        if let Some(p) = self.pending_pos(key) {
            self.pending[p].value = value;
            self.tracker.write(DataClass::Base, CELL);
            return Ok(true);
        }
        if self.deleted.contains(&key) {
            return Ok(false);
        }
        let p1 = self.crack_at(key);
        let p2 = self.crack_at(key.saturating_add(1));
        if p1 < p2 {
            self.data[p1].value = value;
            self.tracker.write(DataClass::Base, CELL);
            Ok(true)
        } else {
            Ok(false)
        }
    }

    fn delete_impl(&mut self, key: Key) -> Result<bool> {
        if !self.live_keys.remove(&key) {
            return Ok(false);
        }
        if let Some(p) = self.pending_pos(key) {
            self.pending.swap_remove(p);
            self.tracker.write(DataClass::Base, CELL);
            return Ok(true);
        }
        self.deleted.insert(key);
        self.tracker.write(DataClass::Aux, 8);
        self.maybe_merge();
        Ok(true)
    }

    fn bulk_load_impl(&mut self, records: &[Record]) -> Result<()> {
        check_bulk_input(records)?;
        self.data = records.to_vec();
        self.index.clear();
        self.pending.clear();
        self.deleted.clear();
        self.live_keys = records.iter().map(|r| r.key).collect();
        self.tracker
            .write(DataClass::Base, records.len() as u64 * CELL);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::seq::SliceRandom;

    /// A shuffled dataset (cracking on pre-sorted data is degenerate).
    fn shuffled(n: u64, seed: u64) -> Vec<Record> {
        let mut recs: Vec<Record> = (0..n).map(|k| Record::new(k, k + 1)).collect();
        recs.shuffle(&mut StdRng::seed_from_u64(seed));
        recs
    }

    fn loaded(n: u64) -> CrackedColumn {
        let mut sorted: Vec<Record> = (0..n).map(|k| Record::new(k, k + 1)).collect();
        sorted.sort_unstable();
        let mut c = CrackedColumn::new();
        c.bulk_load(&sorted).unwrap();
        // Shuffle the physical layout to simulate unclustered arrival.
        c.data.shuffle(&mut StdRng::seed_from_u64(7));
        c
    }

    #[test]
    fn crud_roundtrip() {
        let mut c = CrackedColumn::new();
        for r in shuffled(100, 1) {
            c.insert(r.key, r.value).unwrap();
        }
        assert_eq!(c.len(), 100);
        assert_eq!(c.get(42).unwrap(), Some(43));
        assert_eq!(c.get(200).unwrap(), None);
        assert!(c.update(42, 0).unwrap());
        assert_eq!(c.get(42).unwrap(), Some(0));
        assert!(c.delete(42).unwrap());
        assert!(!c.delete(42).unwrap());
        assert_eq!(c.get(42).unwrap(), None);
        assert_eq!(c.len(), 99);
    }

    #[test]
    fn range_queries_converge() {
        let mut c = loaded(100_000);
        let mut rng = StdRng::seed_from_u64(3);
        let cost_of_query = |c: &mut CrackedColumn, lo: u64| {
            let before = c.tracker().snapshot();
            c.range(lo, lo + 100).unwrap();
            c.tracker().since(&before).total_read_bytes()
        };
        // First query scans everything.
        let first = cost_of_query(&mut c, 50_000);
        // Let it adapt.
        for _ in 0..200 {
            let lo = rng.gen_range(0..99_000u64);
            c.range(lo, lo + 100).unwrap();
        }
        let late = cost_of_query(&mut c, 20_000);
        assert!(
            late * 20 < first,
            "cracking should converge: first {first}, late {late}"
        );
        assert!(c.pieces() > 100);
    }

    #[test]
    fn index_grows_as_queries_arrive() {
        let mut c = loaded(10_000);
        assert_eq!(c.pieces(), 1);
        let mo_before = c.space_profile().space_amplification();
        for lo in (0..9000u64).step_by(500) {
            c.range(lo, lo + 99).unwrap();
        }
        assert!(c.pieces() >= 20);
        let mo_after = c.space_profile().space_amplification();
        assert!(mo_after > mo_before, "cracker index is real MO");
        assert!(mo_after < 1.01, "but it stays tiny: {mo_after}");
    }

    #[test]
    fn stochastic_defends_sequential_pattern() {
        // Sequential range queries from the left: plain cracking re-scans
        // the huge right piece every time; stochastic cracking splits it.
        let run = |stochastic: bool| {
            let mut c = if stochastic {
                CrackedColumn::stochastic(5)
            } else {
                CrackedColumn::new()
            };
            let recs: Vec<Record> = (0..200_000u64).map(|k| Record::new(k, k)).collect();
            c.bulk_load(&recs).unwrap();
            c.data.shuffle(&mut StdRng::seed_from_u64(11));
            let before = c.tracker().snapshot();
            for q in 0..100u64 {
                c.range(q * 100, q * 100 + 99).unwrap();
            }
            c.tracker().since(&before).total_read_bytes()
        };
        let plain = run(false);
        let stoch = run(true);
        assert!(
            stoch * 2 < plain,
            "stochastic ({stoch}) should beat plain ({plain}) on sequential queries"
        );
    }

    #[test]
    fn results_always_correct_while_adapting() {
        let mut c = loaded(5000);
        for lo in [2000u64, 100, 4000, 2500, 0, 4900] {
            let hi = lo + 50;
            let rs = c.range(lo, hi).unwrap();
            let keys: Vec<u64> = rs.iter().map(|r| r.key).collect();
            let expect: Vec<u64> = (lo..=hi.min(4999)).collect();
            assert_eq!(keys, expect, "range {lo}..{hi}");
        }
    }

    #[test]
    fn pending_inserts_are_visible_and_fold_in() {
        let mut c = CrackedColumn::with_config(CrackConfig {
            pending_threshold: 10,
            ..Default::default()
        });
        let recs: Vec<Record> = (0..100u64).map(|k| Record::new(k * 2, k)).collect();
        c.bulk_load(&recs).unwrap();
        c.range(0, 100).unwrap(); // build some index
        let pieces = c.pieces();
        for k in 0..5u64 {
            c.insert(k * 2 + 1, 99).unwrap();
        }
        // Visible while pending.
        assert_eq!(c.get(3).unwrap(), Some(99));
        assert_eq!(c.range(0, 9).unwrap().len(), 10);
        // Exceed the threshold: fold resets the index.
        for k in 5..20u64 {
            c.insert(k * 2 + 1, 99).unwrap();
        }
        assert!(c.pieces() < pieces || pieces == 1);
        assert_eq!(c.get(3).unwrap(), Some(99));
        assert_eq!(c.len(), 120);
    }

    #[test]
    fn model_check_random_ops() {
        let mut rng = StdRng::seed_from_u64(31);
        let mut c = CrackedColumn::with_config(CrackConfig {
            pending_threshold: 64,
            stochastic: true,
            seed: 9,
        });
        let mut model = std::collections::BTreeMap::new();
        for step in 0..4000u64 {
            let k = rng.gen_range(0..1500u64);
            match rng.gen_range(0..6) {
                0 | 1 => {
                    c.insert(k, step).unwrap();
                    model.insert(k, step);
                }
                2 => {
                    assert_eq!(c.update(k, step).unwrap(), model.contains_key(&k));
                    model.entry(k).and_modify(|v| *v = step);
                }
                3 => {
                    assert_eq!(
                        c.delete(k).unwrap(),
                        model.remove(&k).is_some(),
                        "step {step}"
                    );
                }
                4 => {
                    assert_eq!(c.get(k).unwrap(), model.get(&k).copied(), "step {step}");
                }
                _ => {
                    let hi = k + rng.gen_range(0..40u64);
                    let got = c.range(k, hi).unwrap();
                    let expect: Vec<Record> = model
                        .range(k..=hi)
                        .map(|(&k, &v)| Record::new(k, v))
                        .collect();
                    assert_eq!(got, expect, "range {k}..{hi} step {step}");
                }
            }
            assert_eq!(c.len(), model.len(), "step {step}");
        }
    }

    use rand::{rngs::StdRng, Rng, SeedableRng};
}
