//! # rum-adaptive
//!
//! Adaptive access methods — the middle region of the paper's Figure 1:
//! "flexible data structures designed to gradually balance the RUM
//! tradeoffs by using the workload access pattern as a guide ... The
//! incoming queries dictate which part of the index should be fully
//! populated and tuned. The index creation overhead is amortized over a
//! period of time, and it gradually reduces the read overhead, while
//! increasing the update overhead, and slowly increasing the memory
//! overhead."
//!
//! * [`CrackedColumn`] — database cracking (Idreos et al., CIDR 2007):
//!   every range query physically partitions the column around its bounds
//!   and records the pivots in a cracker index. Optionally *stochastic*
//!   (Halim et al., PVLDB 2012): extra random pivots defend against
//!   pathological (e.g. sequential) query patterns.
//! * [`AdaptiveMerger`] — adaptive merging (Graefe & Kuno, EDBT 2010):
//!   data starts as sorted runs; each query merges exactly the key ranges
//!   it touches into a consolidated store, so hot ranges become fully
//!   indexed while cold data is never reorganized.

pub mod crack;
pub mod merge;
pub mod morph;

pub use crack::{CrackConfig, CrackedColumn};
pub use merge::{AdaptiveMerger, IntervalSet};
pub use morph::{MorphConfig, MorphingIndex, Shape};
