//! A morphing access method — §5: "Morphing access methods, combining
//! multiple shapes at once" and "access methods that can automatically and
//! dynamically adapt to new workload requirements".
//!
//! The index watches its own operation mix over a sliding window and
//! physically re-shapes itself:
//!
//! * **Log shape** (write-optimized): records append unsorted; reads scan.
//! * **Sorted shape** (read-optimized): records sorted; binary-search
//!   reads; inserts shift.
//!
//! Crossing a read-fraction threshold triggers a morph (a charged full
//! rewrite); hysteresis keeps it from thrashing. The result is a single
//! method that traces a *path* through the RUM triangle as its workload
//! drifts — the paper's Figure 3 vision, automated.

use std::sync::Arc;

use rum_core::{
    check_bulk_input, AccessMethod, CostTracker, DataClass, Key, Record, Result, SpaceProfile,
    Value, RECORD_SIZE,
};

const CELL: u64 = RECORD_SIZE as u64;

/// Which physical shape the index currently holds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Shape {
    /// Append-ordered, scan-to-read (write-optimized).
    Log,
    /// Key-ordered, binary-search reads (read-optimized).
    Sorted,
}

/// Morphing thresholds.
#[derive(Clone, Copy, Debug)]
pub struct MorphConfig {
    /// Operations per observation window.
    pub window: usize,
    /// Morph to [`Shape::Sorted`] when the window's read fraction exceeds
    /// this.
    pub to_sorted_at: f64,
    /// Morph to [`Shape::Log`] when the window's read fraction falls below
    /// this (must be < `to_sorted_at`: the gap is the hysteresis band).
    pub to_log_at: f64,
}

impl Default for MorphConfig {
    fn default() -> Self {
        MorphConfig {
            window: 256,
            to_sorted_at: 0.6,
            to_log_at: 0.2,
        }
    }
}

/// The morphing index.
pub struct MorphingIndex {
    data: Vec<Record>,
    shape: Shape,
    config: MorphConfig,
    /// Reads and writes observed in the current window.
    window_reads: usize,
    window_writes: usize,
    morphs: u64,
    tracker: Arc<CostTracker>,
}

impl MorphingIndex {
    pub fn new() -> Self {
        Self::with_config(MorphConfig::default())
    }

    pub fn with_config(config: MorphConfig) -> Self {
        assert!(
            config.to_log_at < config.to_sorted_at,
            "hysteresis inverted"
        );
        assert!(config.window >= 8, "window too small to observe a mix");
        MorphingIndex {
            data: Vec::new(),
            shape: Shape::Log,
            config,
            window_reads: 0,
            window_writes: 0,
            morphs: 0,
            tracker: CostTracker::new(),
        }
    }

    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// Shape transitions performed so far.
    pub fn morphs(&self) -> u64 {
        self.morphs
    }

    fn observe(&mut self, read: bool) {
        if read {
            self.window_reads += 1;
        } else {
            self.window_writes += 1;
        }
        let total = self.window_reads + self.window_writes;
        if total < self.config.window {
            return;
        }
        let read_frac = self.window_reads as f64 / total as f64;
        self.window_reads = 0;
        self.window_writes = 0;
        match self.shape {
            Shape::Log if read_frac > self.config.to_sorted_at => self.morph_to(Shape::Sorted),
            Shape::Sorted if read_frac < self.config.to_log_at => self.morph_to(Shape::Log),
            _ => {}
        }
    }

    /// Physically re-shape: a charged full read + rewrite of the data.
    fn morph_to(&mut self, shape: Shape) {
        let bytes = self.data.len() as u64 * CELL;
        self.tracker.read(DataClass::Base, bytes);
        if shape == Shape::Sorted {
            self.data.sort_unstable();
        }
        // (Morphing to Log keeps the current order; future appends restore
        // the log property.)
        self.tracker.write(DataClass::Base, bytes);
        self.shape = shape;
        self.morphs += 1;
    }

    /// Position of `key`, with shape-appropriate charging.
    fn find(&self, key: Key) -> Option<usize> {
        match self.shape {
            Shape::Sorted => {
                let steps = (self.data.len().max(2) as f64).log2().ceil() as u64;
                self.tracker.read(DataClass::Base, steps * CELL);
                self.data.binary_search_by_key(&key, |r| r.key).ok()
            }
            Shape::Log => {
                let pos = self.data.iter().rposition(|r| r.key == key);
                let examined = pos.map(|p| self.data.len() - p).unwrap_or(self.data.len());
                self.tracker.read(DataClass::Base, examined as u64 * CELL);
                pos
            }
        }
    }
}

impl Default for MorphingIndex {
    fn default() -> Self {
        Self::new()
    }
}

impl AccessMethod for MorphingIndex {
    fn name(&self) -> String {
        "morphing-index".into()
    }

    fn len(&self) -> usize {
        self.data.len()
    }

    fn tracker(&self) -> &Arc<CostTracker> {
        &self.tracker
    }

    fn space_profile(&self) -> SpaceProfile {
        SpaceProfile::from_physical(self.data.len(), self.data.len() as u64 * CELL)
    }

    fn get_impl(&mut self, key: Key) -> Result<Option<Value>> {
        self.observe(true);
        Ok(self.find(key).map(|i| self.data[i].value))
    }

    fn range_impl(&mut self, lo: Key, hi: Key) -> Result<Vec<Record>> {
        self.observe(true);
        match self.shape {
            Shape::Sorted => {
                let start = self.data.partition_point(|r| r.key < lo);
                let end = self.data.partition_point(|r| r.key <= hi);
                let steps = (self.data.len().max(2) as f64).log2().ceil() as u64;
                self.tracker
                    .read(DataClass::Base, steps * CELL + (end - start) as u64 * CELL);
                Ok(self.data[start..end].to_vec())
            }
            Shape::Log => {
                self.tracker
                    .read(DataClass::Base, self.data.len() as u64 * CELL);
                let mut out: Vec<Record> = self
                    .data
                    .iter()
                    .copied()
                    .filter(|r| r.key >= lo && r.key <= hi)
                    .collect();
                out.sort_unstable();
                Ok(out)
            }
        }
    }

    fn insert_impl(&mut self, key: Key, value: Value) -> Result<()> {
        self.observe(false);
        match self.shape {
            Shape::Log => {
                // Upsert in a log: overwrite the newest copy if present,
                // else append. (The scan is the log's read debt; keys are
                // unique so one copy exists at most.)
                if let Some(i) = self.find(key) {
                    self.data[i].value = value;
                } else {
                    self.data.push(Record::new(key, value));
                }
                self.tracker.write(DataClass::Base, CELL);
            }
            Shape::Sorted => match self.data.binary_search_by_key(&key, |r| r.key) {
                Ok(i) => {
                    self.data[i].value = value;
                    self.tracker.write(DataClass::Base, CELL);
                }
                Err(i) => {
                    // Shifting the tail is the sorted shape's write debt.
                    let shifted = (self.data.len() - i) as u64;
                    self.data.insert(i, Record::new(key, value));
                    self.tracker.write(DataClass::Base, (shifted + 1) * CELL);
                }
            },
        }
        Ok(())
    }

    fn update_impl(&mut self, key: Key, value: Value) -> Result<bool> {
        self.observe(false);
        match self.find(key) {
            Some(i) => {
                self.data[i].value = value;
                self.tracker.write(DataClass::Base, CELL);
                Ok(true)
            }
            None => Ok(false),
        }
    }

    fn delete_impl(&mut self, key: Key) -> Result<bool> {
        self.observe(false);
        match self.find(key) {
            Some(i) => {
                match self.shape {
                    Shape::Log => {
                        // Swap-remove keeps the log dense with one write.
                        self.data.swap_remove(i);
                        self.tracker.write(DataClass::Base, CELL);
                    }
                    Shape::Sorted => {
                        let shifted = (self.data.len() - i - 1) as u64;
                        self.data.remove(i);
                        self.tracker.write(DataClass::Base, shifted.max(1) * CELL);
                    }
                }
                Ok(true)
            }
            None => Ok(false),
        }
    }

    fn bulk_load_impl(&mut self, records: &[Record]) -> Result<()> {
        check_bulk_input(records)?;
        self.data = records.to_vec();
        self.tracker
            .write(DataClass::Base, records.len() as u64 * CELL);
        // A sorted bulk load leaves the index in its read-optimized shape.
        self.shape = Shape::Sorted;
        self.window_reads = 0;
        self.window_writes = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(window: usize) -> MorphConfig {
        MorphConfig {
            window,
            to_sorted_at: 0.6,
            to_log_at: 0.2,
        }
    }

    #[test]
    fn crud_roundtrip_across_shapes() {
        let mut m = MorphingIndex::with_config(cfg(16));
        for k in [9u64, 1, 5, 3, 7] {
            m.insert(k, k * 10).unwrap();
        }
        assert_eq!(m.shape(), Shape::Log);
        assert_eq!(m.get(5).unwrap(), Some(50));
        assert!(m.update(5, 55).unwrap());
        assert!(m.delete(9).unwrap());
        assert_eq!(m.len(), 4);
        // Read-heavy burst: should morph to sorted.
        for _ in 0..64 {
            m.get(1).unwrap();
        }
        assert_eq!(m.shape(), Shape::Sorted);
        assert_eq!(m.get(5).unwrap(), Some(55));
        assert_eq!(
            m.range(0, 10)
                .unwrap()
                .iter()
                .map(|r| r.key)
                .collect::<Vec<_>>(),
            vec![1, 3, 5, 7]
        );
    }

    #[test]
    fn morphs_to_sorted_under_reads_and_back_under_writes() {
        let mut m = MorphingIndex::with_config(cfg(32));
        for k in 0..100u64 {
            m.insert(k, k).unwrap();
        }
        assert_eq!(m.shape(), Shape::Log);
        for _ in 0..100 {
            m.get(50).unwrap();
        }
        assert_eq!(m.shape(), Shape::Sorted);
        let morphs = m.morphs();
        for k in 100..300u64 {
            m.insert(k, k).unwrap();
        }
        assert_eq!(m.shape(), Shape::Log);
        assert!(m.morphs() > morphs);
        // Contents intact throughout.
        for k in (0..300u64).step_by(37) {
            assert_eq!(m.get(k).unwrap(), Some(k));
        }
    }

    #[test]
    fn hysteresis_prevents_thrash_on_balanced_mixes() {
        let mut m = MorphingIndex::with_config(cfg(32));
        for k in 0..50u64 {
            m.insert(k, k).unwrap();
        }
        let before = m.morphs();
        // 50/50 mix sits inside the hysteresis band: no morphs.
        for i in 0..512u64 {
            if i % 2 == 0 {
                m.get(i % 50).unwrap();
            } else {
                m.update(i % 50, i).unwrap();
            }
        }
        assert_eq!(m.morphs(), before, "balanced mix must not thrash");
    }

    #[test]
    fn read_cost_falls_after_morph() {
        let mut m = MorphingIndex::with_config(cfg(64));
        for k in 0..4000u64 {
            m.insert(k, k).unwrap();
        }
        let probe_cost = |m: &mut MorphingIndex| {
            let before = m.tracker().snapshot();
            m.get(1).unwrap(); // oldest key: worst case for the log scan
            m.tracker().since(&before).total_read_bytes()
        };
        let log_cost = probe_cost(&mut m);
        for _ in 0..128 {
            m.get(0).unwrap();
        }
        assert_eq!(m.shape(), Shape::Sorted);
        let sorted_cost = probe_cost(&mut m);
        assert!(
            sorted_cost * 20 < log_cost,
            "morphing should slash read cost: {log_cost} -> {sorted_cost}"
        );
    }

    #[test]
    fn write_cost_falls_after_morph_back() {
        let mut m = MorphingIndex::with_config(cfg(32));
        let recs: Vec<Record> = (0..4000u64).map(|k| Record::new(k * 2, k)).collect();
        m.bulk_load(&recs).unwrap();
        assert_eq!(m.shape(), Shape::Sorted);
        let insert_cost = |m: &mut MorphingIndex, k: u64| {
            let before = m.tracker().snapshot();
            m.insert(k, 0).unwrap();
            m.tracker().since(&before).total_write_bytes()
        };
        let sorted_cost = insert_cost(&mut m, 1); // front insert: max shift
                                                  // Write burst flips it back to the log.
        for i in 0..64u64 {
            m.insert(100_000 + i, 0).unwrap();
        }
        assert_eq!(m.shape(), Shape::Log);
        let log_cost = insert_cost(&mut m, 3);
        assert!(
            log_cost * 100 < sorted_cost,
            "log appends must be cheap: {sorted_cost} -> {log_cost}"
        );
    }

    #[test]
    fn model_check_random_ops() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(83);
        let mut m = MorphingIndex::with_config(cfg(16));
        let mut model = std::collections::BTreeMap::new();
        for step in 0..4000u64 {
            let k = rng.gen_range(0..800u64);
            match rng.gen_range(0..6) {
                0 | 1 => {
                    m.insert(k, step).unwrap();
                    model.insert(k, step);
                }
                2 => {
                    assert_eq!(m.update(k, step).unwrap(), model.contains_key(&k));
                    model.entry(k).and_modify(|v| *v = step);
                }
                3 => {
                    assert_eq!(m.delete(k).unwrap(), model.remove(&k).is_some());
                }
                4 => {
                    assert_eq!(m.get(k).unwrap(), model.get(&k).copied(), "step {step}");
                }
                _ => {
                    let hi = k + rng.gen_range(0..50u64);
                    let got = m.range(k, hi).unwrap();
                    let expect: Vec<Record> = model
                        .range(k..=hi)
                        .map(|(&k, &v)| Record::new(k, v))
                        .collect();
                    assert_eq!(got, expect, "range at step {step} (shape {:?})", m.shape());
                }
            }
            assert_eq!(m.len(), model.len());
        }
        assert!(m.morphs() > 0, "the stream should have triggered morphs");
    }

    #[test]
    fn mo_is_always_minimal() {
        // Morphing trades R against U but never spends space.
        let mut m = MorphingIndex::new();
        for k in 0..1000u64 {
            m.insert(k, k).unwrap();
        }
        assert_eq!(m.space_profile().space_amplification(), 1.0);
    }
}
