//! Adaptive merging (Graefe & Kuno): "self-selecting, self-tuning,
//! incrementally optimized indexes". Data starts as sorted runs; each
//! query merges only the key ranges it touches into a consolidated store,
//! so the index materializes exactly where the workload looks.

use std::collections::{BTreeMap, HashSet};
use std::sync::Arc;

use rum_core::{
    check_bulk_input, AccessMethod, CostTracker, DataClass, Key, Record, Result, SpaceProfile,
    Value, RECORD_SIZE,
};

const CELL: u64 = RECORD_SIZE as u64;

/// A set of disjoint inclusive intervals over `u64`.
#[derive(Clone, Debug, Default)]
pub struct IntervalSet {
    /// Sorted, disjoint, non-adjacent `(lo, hi)` inclusive intervals.
    iv: Vec<(u64, u64)>,
}

impl IntervalSet {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn len(&self) -> usize {
        self.iv.len()
    }

    pub fn is_empty(&self) -> bool {
        self.iv.is_empty()
    }

    /// Add `[lo, hi]`, merging with overlapping/adjacent intervals.
    pub fn add(&mut self, lo: u64, hi: u64) {
        debug_assert!(lo <= hi);
        let mut new_lo = lo;
        let mut new_hi = hi;
        let mut out = Vec::with_capacity(self.iv.len() + 1);
        let mut placed = false;
        for &(a, b) in &self.iv {
            if b.saturating_add(1) < new_lo {
                out.push((a, b)); // entirely left
            } else if a > new_hi.saturating_add(1) {
                if !placed {
                    out.push((new_lo, new_hi));
                    placed = true;
                }
                out.push((a, b)); // entirely right
            } else {
                // Overlapping or adjacent: absorb.
                new_lo = new_lo.min(a);
                new_hi = new_hi.max(b);
            }
        }
        if !placed {
            out.push((new_lo, new_hi));
        }
        self.iv = out;
    }

    /// Whether `[lo, hi]` is fully covered.
    pub fn covers(&self, lo: u64, hi: u64) -> bool {
        self.iv.iter().any(|&(a, b)| a <= lo && hi <= b)
    }

    /// Whether the point `p` is covered.
    pub fn contains(&self, p: u64) -> bool {
        self.covers(p, p)
    }

    /// Sub-intervals of `[lo, hi]` NOT covered yet.
    pub fn uncovered(&self, lo: u64, hi: u64) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cursor = lo;
        for &(a, b) in &self.iv {
            if b < cursor {
                continue;
            }
            if a > hi {
                break;
            }
            if a > cursor {
                out.push((cursor, a - 1));
            }
            if b >= hi {
                return out; // covered through the end of the query
            }
            cursor = b + 1; // safe: b < hi <= u64::MAX
        }
        if cursor <= hi {
            out.push((cursor, hi));
        }
        out
    }
}

/// The adaptive merger.
pub struct AdaptiveMerger {
    /// Initial sorted runs; records migrate out as queries touch them.
    runs: Vec<Vec<Record>>,
    /// The consolidated (fully indexed) store.
    merged: BTreeMap<Key, Value>,
    /// Key ranges already consolidated.
    covered: IntervalSet,
    /// Liveness oracle (uncharged; see the LSM's note).
    live_keys: HashSet<Key>,
    run_records: usize,
    tracker: Arc<CostTracker>,
}

impl AdaptiveMerger {
    /// Runs of `run_records` records each.
    pub fn new(run_records: usize) -> Self {
        AdaptiveMerger {
            runs: Vec::new(),
            merged: BTreeMap::new(),
            covered: IntervalSet::new(),
            live_keys: HashSet::new(),
            run_records: run_records.max(16),
            tracker: CostTracker::new(),
        }
    }

    /// Records still sitting in un-merged runs.
    pub fn unmerged_records(&self) -> usize {
        self.runs.iter().map(|r| r.len()).sum()
    }

    /// Records consolidated so far.
    pub fn merged_records(&self) -> usize {
        self.merged.len()
    }

    /// Consolidated intervals (diagnostic).
    pub fn covered_intervals(&self) -> usize {
        self.covered.len()
    }

    /// Pull every record in `[lo, hi]` out of the runs into the merged
    /// store, charging the binary searches, the records moved, and the
    /// shifts within each run.
    fn consolidate(&mut self, lo: Key, hi: Key) {
        for (flo, fhi) in self.covered.uncovered(lo, hi) {
            for run in &mut self.runs {
                let start = run.partition_point(|r| r.key < flo);
                let end = run.partition_point(|r| r.key <= fhi);
                // Binary searches over the run (auxiliary probing).
                self.tracker.read(
                    DataClass::Aux,
                    2 * 8 * (run.len().max(2) as f64).log2().ceil() as u64,
                );
                if start == end {
                    continue;
                }
                let moved = (end - start) as u64;
                let shifted = (run.len() - end) as u64;
                // Read the extracted records, write them into the merged
                // store, and pay for closing the gap in the run.
                self.tracker.read(DataClass::Base, moved * CELL);
                self.tracker
                    .write(DataClass::Base, (moved + shifted) * CELL);
                for r in run.drain(start..end) {
                    // Never clobber a newer version already consolidated.
                    self.merged.entry(r.key).or_insert(r.value);
                }
            }
            self.covered.add(flo, fhi);
        }
        self.runs.retain(|r| !r.is_empty());
    }

    /// Charged read of merged entries in `[lo, hi]`.
    fn read_merged(&self, lo: Key, hi: Key) -> Vec<Record> {
        let out: Vec<Record> = self
            .merged
            .range(lo..=hi)
            .map(|(&k, &v)| Record::new(k, v))
            .collect();
        self.tracker
            .read(DataClass::Base, (out.len().max(1) as u64) * CELL);
        out
    }
}

impl Default for AdaptiveMerger {
    fn default() -> Self {
        Self::new(4096)
    }
}

impl AccessMethod for AdaptiveMerger {
    fn name(&self) -> String {
        "adaptive-merging".into()
    }

    fn len(&self) -> usize {
        self.live_keys.len()
    }

    fn tracker(&self) -> &Arc<CostTracker> {
        &self.tracker
    }

    fn space_profile(&self) -> SpaceProfile {
        let records = (self.unmerged_records() + self.merged.len()) as u64 * CELL;
        let interval_meta = self.covered.len() as u64 * 16;
        // The merged store keeps tree structure: ~16 bytes/entry overhead.
        let tree_overhead = self.merged.len() as u64 * 16;
        SpaceProfile::from_physical(
            self.live_keys.len(),
            records + interval_meta + tree_overhead,
        )
    }

    fn get_impl(&mut self, key: Key) -> Result<Option<Value>> {
        self.consolidate(key, key);
        let r = self.merged.get(&key).copied();
        self.tracker.read(DataClass::Base, CELL);
        // Respect deletions: a consolidated range with no entry is a miss.
        Ok(r.filter(|_| self.live_keys.contains(&key)))
    }

    fn range_impl(&mut self, lo: Key, hi: Key) -> Result<Vec<Record>> {
        self.consolidate(lo, hi);
        Ok(self
            .read_merged(lo, hi)
            .into_iter()
            .filter(|r| self.live_keys.contains(&r.key))
            .collect())
    }

    fn insert_impl(&mut self, key: Key, value: Value) -> Result<()> {
        // New data goes straight to the consolidated store and marks its
        // point covered, so stale run copies can never resurface over it.
        self.consolidate(key, key);
        self.merged.insert(key, value);
        self.tracker.write(DataClass::Base, CELL);
        self.live_keys.insert(key);
        Ok(())
    }

    fn update_impl(&mut self, key: Key, value: Value) -> Result<bool> {
        if !self.live_keys.contains(&key) {
            return Ok(false);
        }
        self.consolidate(key, key);
        self.merged.insert(key, value);
        self.tracker.write(DataClass::Base, CELL);
        Ok(true)
    }

    fn delete_impl(&mut self, key: Key) -> Result<bool> {
        if !self.live_keys.remove(&key) {
            return Ok(false);
        }
        self.consolidate(key, key);
        self.merged.remove(&key);
        self.tracker.write(DataClass::Base, CELL);
        Ok(true)
    }

    fn bulk_load_impl(&mut self, records: &[Record]) -> Result<()> {
        check_bulk_input(records)?;
        self.merged.clear();
        self.covered = IntervalSet::new();
        self.live_keys = records.iter().map(|r| r.key).collect();
        // Initial runs: contiguous chunks, each sorted (input is sorted,
        // so chunks are too — real systems sort each run at load).
        self.runs = records
            .chunks(self.run_records)
            .map(|c| c.to_vec())
            .collect();
        self.tracker
            .write(DataClass::Base, records.len() as u64 * CELL);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    mod interval_set {
        use super::*;

        #[test]
        fn add_and_merge() {
            let mut s = IntervalSet::new();
            s.add(10, 20);
            s.add(30, 40);
            assert_eq!(s.len(), 2);
            s.add(18, 32); // bridges both
            assert_eq!(s.len(), 1);
            assert!(s.covers(10, 40));
            assert!(!s.covers(9, 40));
        }

        #[test]
        fn adjacent_intervals_coalesce() {
            let mut s = IntervalSet::new();
            s.add(0, 9);
            s.add(10, 19);
            assert_eq!(s.len(), 1);
            assert!(s.covers(0, 19));
        }

        #[test]
        fn uncovered_complement() {
            let mut s = IntervalSet::new();
            s.add(10, 20);
            s.add(40, 50);
            assert_eq!(s.uncovered(0, 60), vec![(0, 9), (21, 39), (51, 60)]);
            assert_eq!(s.uncovered(15, 18), vec![]);
            assert_eq!(s.uncovered(15, 45), vec![(21, 39)]);
            assert_eq!(s.uncovered(25, 30), vec![(25, 30)]);
        }

        #[test]
        fn edge_of_domain() {
            let mut s = IntervalSet::new();
            s.add(u64::MAX - 5, u64::MAX);
            assert!(s.contains(u64::MAX));
            assert_eq!(
                s.uncovered(u64::MAX - 10, u64::MAX),
                vec![(u64::MAX - 10, u64::MAX - 6)]
            );
        }

        #[test]
        fn random_model_check() {
            use rand::{rngs::StdRng, Rng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(17);
            let mut s = IntervalSet::new();
            let mut model = vec![false; 1000];
            for _ in 0..200 {
                let lo = rng.gen_range(0..1000u64);
                let hi = (lo + rng.gen_range(0..50u64)).min(999);
                s.add(lo, hi);
                for m in model.iter_mut().take(hi as usize + 1).skip(lo as usize) {
                    *m = true;
                }
                // Verify covers/uncovered against the model.
                let qlo = rng.gen_range(0..990u64);
                let qhi = qlo + rng.gen_range(0..10u64);
                let expect_cover = (qlo..=qhi).all(|i| model[i as usize]);
                assert_eq!(s.covers(qlo, qhi), expect_cover);
                let unc = s.uncovered(qlo, qhi);
                for i in qlo..=qhi {
                    let in_unc = unc.iter().any(|&(a, b)| a <= i && i <= b);
                    assert_eq!(in_unc, !model[i as usize], "point {i}");
                }
            }
        }
    }

    fn loaded(n: u64, run: usize) -> AdaptiveMerger {
        let recs: Vec<Record> = (0..n).map(|k| Record::new(k, k + 1)).collect();
        let mut m = AdaptiveMerger::new(run);
        m.bulk_load(&recs).unwrap();
        m
    }

    #[test]
    fn crud_roundtrip() {
        let mut m = loaded(1000, 100);
        assert_eq!(m.get(500).unwrap(), Some(501));
        assert_eq!(m.get(1000).unwrap(), None);
        assert!(m.update(500, 9).unwrap());
        assert_eq!(m.get(500).unwrap(), Some(9));
        assert!(m.delete(500).unwrap());
        assert!(!m.delete(500).unwrap());
        assert_eq!(m.get(500).unwrap(), None);
        m.insert(500, 77).unwrap();
        assert_eq!(m.get(500).unwrap(), Some(77));
        assert_eq!(m.len(), 1000);
    }

    #[test]
    fn queries_consolidate_their_ranges() {
        let mut m = loaded(10_000, 1000);
        assert_eq!(m.unmerged_records(), 10_000);
        let rs = m.range(2000, 2999).unwrap();
        assert_eq!(rs.len(), 1000);
        assert_eq!(m.merged_records(), 1000);
        assert_eq!(m.unmerged_records(), 9000);
        // Re-querying the hot range touches runs no more.
        let before = m.tracker().snapshot();
        m.range(2100, 2200).unwrap();
        let d = m.tracker().since(&before);
        assert_eq!(d.total_write_bytes(), 0, "no more reorganization");
    }

    #[test]
    fn repeated_queries_get_cheaper() {
        let mut m = loaded(100_000, 10_000);
        let cost = |m: &mut AdaptiveMerger| {
            let before = m.tracker().snapshot();
            m.range(50_000, 50_999).unwrap();
            m.tracker().since(&before).total_read_bytes()
        };
        let first = cost(&mut m);
        let second = cost(&mut m);
        assert!(
            second < first / 2,
            "adaptive merging should converge: {first} -> {second}"
        );
    }

    #[test]
    fn cold_data_is_never_reorganized() {
        let mut m = loaded(10_000, 1000);
        for _ in 0..50 {
            m.range(1000, 1099).unwrap();
        }
        // Only the queried range was consolidated.
        assert!(m.merged_records() <= 1100);
        assert!(m.unmerged_records() >= 8900);
    }

    #[test]
    fn results_correct_across_consolidation_boundaries() {
        let mut m = loaded(5000, 500);
        m.range(100, 200).unwrap();
        m.range(150, 400).unwrap(); // overlaps covered + uncovered
        let rs = m.range(90, 410).unwrap();
        let keys: Vec<u64> = rs.iter().map(|r| r.key).collect();
        assert_eq!(keys, (90..=410).collect::<Vec<_>>());
    }

    #[test]
    fn inserts_never_resurface_stale_run_copies() {
        let mut m = loaded(1000, 100);
        // Overwrite key 555 before its run was ever consolidated.
        m.insert_impl(555, 42).unwrap();
        // Now consolidate the surrounding range: the run still holds the
        // old record (555, 556); it must not clobber the new value.
        let rs = m.range(550, 560).unwrap();
        let v555 = rs.iter().find(|r| r.key == 555).unwrap().value;
        assert_eq!(v555, 42);
    }

    #[test]
    fn model_check_random_ops() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(43);
        let recs: Vec<Record> = (0..2000u64).map(|k| Record::new(k, k)).collect();
        let mut m = AdaptiveMerger::new(128);
        m.bulk_load(&recs).unwrap();
        let mut model: std::collections::BTreeMap<u64, u64> =
            recs.iter().map(|r| (r.key, r.value)).collect();
        for step in 0..4000u64 {
            let k = rng.gen_range(0..2500u64);
            match rng.gen_range(0..6) {
                0 => {
                    m.insert(k, step).unwrap();
                    model.insert(k, step);
                }
                1 | 2 => {
                    assert_eq!(m.update(k, step).unwrap(), model.contains_key(&k));
                    model.entry(k).and_modify(|v| *v = step);
                }
                3 => {
                    assert_eq!(m.delete(k).unwrap(), model.remove(&k).is_some());
                }
                4 => {
                    assert_eq!(m.get(k).unwrap(), model.get(&k).copied(), "step {step}");
                }
                _ => {
                    let hi = k + rng.gen_range(0..60u64);
                    let got = m.range(k, hi).unwrap();
                    let expect: Vec<Record> = model
                        .range(k..=hi)
                        .map(|(&k, &v)| Record::new(k, v))
                        .collect();
                    assert_eq!(got, expect, "range {k}..{hi} step {step}");
                }
            }
            assert_eq!(m.len(), model.len());
        }
    }
}
