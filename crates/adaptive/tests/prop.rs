//! Property-based differential tests for the adaptive methods: results
//! must stay exact no matter how the structure reorganizes mid-stream.

use proptest::prelude::*;
use rum_adaptive::{AdaptiveMerger, CrackConfig, CrackedColumn, IntervalSet};
use rum_core::{AccessMethod, Record};
use std::collections::BTreeMap;

#[derive(Clone, Debug)]
enum AOp {
    Insert(u16, u32),
    Update(u16, u32),
    Delete(u16),
    Get(u16),
    Range(u16, u8),
}

fn op_strategy() -> impl Strategy<Value = AOp> {
    prop_oneof![
        (any::<u16>(), any::<u32>()).prop_map(|(k, v)| AOp::Insert(k, v)),
        (any::<u16>(), any::<u32>()).prop_map(|(k, v)| AOp::Update(k, v)),
        any::<u16>().prop_map(AOp::Delete),
        any::<u16>().prop_map(AOp::Get),
        (any::<u16>(), any::<u8>()).prop_map(|(lo, s)| AOp::Range(lo, s)),
    ]
}

fn run(method: &mut dyn AccessMethod, base: &[Record], ops: &[AOp]) {
    let mut model: BTreeMap<u64, u64> = base.iter().map(|r| (r.key, r.value)).collect();
    method.bulk_load(base).unwrap();
    for op in ops {
        match *op {
            AOp::Insert(k, v) => {
                method.insert(k as u64, v as u64).unwrap();
                model.insert(k as u64, v as u64);
            }
            AOp::Update(k, v) => {
                assert_eq!(
                    method.update(k as u64, v as u64).unwrap(),
                    model.contains_key(&(k as u64))
                );
                model.entry(k as u64).and_modify(|x| *x = v as u64);
            }
            AOp::Delete(k) => {
                assert_eq!(
                    method.delete(k as u64).unwrap(),
                    model.remove(&(k as u64)).is_some()
                );
            }
            AOp::Get(k) => {
                assert_eq!(
                    method.get(k as u64).unwrap(),
                    model.get(&(k as u64)).copied()
                );
            }
            AOp::Range(lo, span) => {
                let (lo, hi) = (lo as u64, lo as u64 + span as u64);
                let got = method.range(lo, hi).unwrap();
                let expect: Vec<Record> = model
                    .range(lo..=hi)
                    .map(|(&k, &v)| Record::new(k, v))
                    .collect();
                assert_eq!(got, expect);
            }
        }
        assert_eq!(method.len(), model.len());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn cracking_matches_model(
        base_keys in proptest::collection::btree_set(0u16..500, 0..200),
        ops in proptest::collection::vec(op_strategy(), 1..200),
        stochastic in any::<bool>(),
        threshold in 4usize..64,
    ) {
        let base: Vec<Record> = base_keys
            .iter()
            .map(|&k| Record::new(k as u64, k as u64))
            .collect();
        let mut c = CrackedColumn::with_config(CrackConfig {
            stochastic,
            pending_threshold: threshold,
            seed: 1,
        });
        run(&mut c, &base, &ops);
    }

    #[test]
    fn adaptive_merging_matches_model(
        base_keys in proptest::collection::btree_set(0u16..500, 0..200),
        ops in proptest::collection::vec(op_strategy(), 1..200),
        run_size in 16usize..128,
    ) {
        let base: Vec<Record> = base_keys
            .iter()
            .map(|&k| Record::new(k as u64, k as u64))
            .collect();
        let mut m = AdaptiveMerger::new(run_size);
        run(&mut m, &base, &ops);
    }

    #[test]
    fn interval_set_covers_exactly_what_was_added(
        intervals in proptest::collection::vec((0u64..1000, 0u64..60), 1..60),
        probes in proptest::collection::vec(0u64..1100, 1..60),
    ) {
        let mut s = IntervalSet::new();
        let mut model = vec![false; 1100];
        for &(lo, span) in &intervals {
            let hi = (lo + span).min(1099);
            s.add(lo, hi);
            for m in model.iter_mut().take(hi as usize + 1).skip(lo as usize) {
                *m = true;
            }
        }
        for &p in &probes {
            prop_assert_eq!(s.contains(p), model[p as usize], "point {}", p);
        }
    }
}
