//! Immutable sorted runs: packed pages + fence pointers + an optional
//! point-probe filter (Bloom or quotient).
//!
//! Fence pointers (first key per page, kept in memory) route a point probe
//! to exactly one page; the filter short-circuits probes for absent keys —
//! the paper's "more efficient reads ... by avoiding accessing unnecessary
//! data at the expense of additional space".

use rum_core::{DataClass, Key, Record, Result, Value, RECORDS_PER_PAGE, RECORD_SIZE};
use rum_sketch::{BloomFilter, QuotientFilter};
use rum_storage::{BlockDevice, PageBuf, PageId, Pager};

/// Which probabilistic filter guards point probes into a run. The per-key
/// space budget for [`Bloom`](FilterKind::Bloom) comes from
/// `LsmConfig::bloom_bits_per_key`; setting that knob to zero disables the
/// filter for either kind.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FilterKind {
    /// A Bloom filter (the classic choice: smallest for a given FPR, but
    /// supports neither deletes nor resizing).
    Bloom,
    /// A quotient filter with `rbits`-bit remainders — the §5 roadmap's
    /// updatable probabilistic structure. FPR ≈ `load × 2^-rbits`.
    Quotient { rbits: u32 },
}

/// A built per-run filter. Both kinds are charged identically: the build
/// is an aux write of [`size_bytes`](Self::size_bytes), every membership
/// probe an aux read of [`probe_bytes`](Self::probe_bytes).
enum RunFilter {
    Bloom(BloomFilter),
    Quotient(QuotientFilter),
}

impl RunFilter {
    fn build(kind: FilterKind, bits_per_key: f64, records: &[Record]) -> Option<RunFilter> {
        if bits_per_key <= 0.0 || records.is_empty() {
            return None;
        }
        Some(match kind {
            FilterKind::Bloom => {
                let mut b = BloomFilter::new(records.len(), bits_per_key);
                for r in records {
                    b.insert(r.key);
                }
                RunFilter::Bloom(b)
            }
            FilterKind::Quotient { rbits } => {
                let mut q = QuotientFilter::with_capacity(records.len(), rbits);
                for r in records {
                    q.insert(r.key);
                }
                RunFilter::Quotient(q)
            }
        })
    }

    fn may_contain(&self, key: Key) -> bool {
        match self {
            RunFilter::Bloom(b) => b.may_contain(key),
            RunFilter::Quotient(q) => q.may_contain(key),
        }
    }

    /// Auxiliary bytes the filter occupies.
    fn size_bytes(&self) -> u64 {
        match self {
            RunFilter::Bloom(b) => b.size_bytes(),
            RunFilter::Quotient(q) => q.size_bytes(),
        }
    }

    /// Bytes one membership probe touches: `k` bit probes for a Bloom
    /// filter, one `(rbits + 3)`-bit slot cluster for a quotient filter —
    /// both rounded up to whole bytes.
    fn probe_bytes(&self) -> u64 {
        match self {
            RunFilter::Bloom(b) => (b.hashes() as u64).div_ceil(8).max(1),
            RunFilter::Quotient(q) => (q.rbits() as u64 + 3).div_ceil(8).max(1),
        }
    }
}

/// One immutable sorted run.
pub struct SortedRun {
    pages: Vec<PageId>,
    /// First key of each page.
    fences: Vec<Key>,
    filter: Option<RunFilter>,
    /// Largest key in the run (meaningful only when `len > 0`).
    last_key: Key,
    len: usize,
}

impl SortedRun {
    /// Write `records` (sorted, unique keys, tombstones included) as a new
    /// run. `bits_per_key = 0` disables the filter regardless of `filter`.
    pub fn build<D: BlockDevice>(
        pager: &mut Pager<D>,
        records: &[Record],
        filter: FilterKind,
        bits_per_key: f64,
    ) -> Result<SortedRun> {
        debug_assert!(records.windows(2).all(|w| w[0].key < w[1].key));
        let mut pages = Vec::with_capacity(records.len().div_ceil(RECORDS_PER_PAGE));
        let mut fences = Vec::with_capacity(pages.capacity());
        for chunk in records.chunks(RECORDS_PER_PAGE) {
            let id = pager.allocate()?;
            let mut buf = PageBuf::zeroed();
            for (i, r) in chunk.iter().enumerate() {
                r.encode_into(&mut buf[i * RECORD_SIZE..(i + 1) * RECORD_SIZE]);
            }
            pager.write(id, DataClass::Base, &buf)?;
            fences.push(chunk[0].key);
            pages.push(id);
        }
        let filter = RunFilter::build(filter, bits_per_key, records);
        if let Some(f) = &filter {
            // Building the filter is an auxiliary write.
            pager.tracker().write(DataClass::Aux, f.size_bytes());
        }
        Ok(SortedRun {
            pages,
            fences,
            filter,
            last_key: records.last().map_or(0, |r| r.key),
            len: records.len(),
        })
    }

    /// Entries in the run (live + tombstones).
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn num_pages(&self) -> usize {
        self.pages.len()
    }

    /// Auxiliary bytes: fences + point-probe filter.
    pub fn aux_bytes(&self) -> u64 {
        (self.fences.len() * 8) as u64 + self.filter.as_ref().map_or(0, |f| f.size_bytes())
    }

    pub fn has_bloom(&self) -> bool {
        self.filter.is_some()
    }

    /// Smallest key in the run, `None` when empty.
    pub fn min_key(&self) -> Option<Key> {
        self.fences.first().copied()
    }

    /// Largest key in the run, `None` when empty.
    pub fn max_key(&self) -> Option<Key> {
        (self.len > 0).then_some(self.last_key)
    }

    /// Whether the run's `[min, max]` key envelope intersects `[lo, hi]`.
    /// A pure in-memory comparison against two cached keys — deliberately
    /// charge-free, so callers can prune disjoint runs for nothing.
    pub fn overlaps(&self, lo: Key, hi: Key) -> bool {
        self.len > 0 && self.fences[0] <= hi && self.last_key >= lo
    }

    fn records_in_page(&self, page_idx: usize) -> usize {
        if page_idx + 1 == self.pages.len() {
            let rem = self.len % RECORDS_PER_PAGE;
            if rem == 0 {
                RECORDS_PER_PAGE
            } else {
                rem
            }
        } else {
            RECORDS_PER_PAGE
        }
    }

    /// Read one page's records by in-run page index (charged like any base
    /// read). Public so the cross-run sorted view can fetch exactly the
    /// pages its anchors name.
    pub fn read_page<D: BlockDevice>(
        &self,
        pager: &mut Pager<D>,
        page_idx: usize,
    ) -> Result<Vec<Record>> {
        let buf = pager.read(self.pages[page_idx], DataClass::Base)?;
        Ok((0..self.records_in_page(page_idx))
            .map(|i| Record::decode(&buf[i * RECORD_SIZE..(i + 1) * RECORD_SIZE]))
            .collect())
    }

    /// Point probe. Charges: one filter probe (if present), a fence binary
    /// search, and at most one page read.
    pub fn get<D: BlockDevice>(&self, pager: &mut Pager<D>, key: Key) -> Result<Option<Value>> {
        if self.len == 0 {
            return Ok(None);
        }
        if let Some(f) = &self.filter {
            pager.tracker().read(DataClass::Aux, f.probe_bytes());
            if !f.may_contain(key) {
                return Ok(None);
            }
        }
        // Fence binary search (in-memory aux metadata).
        let steps = (self.fences.len().max(2) as f64).log2().ceil() as u64;
        pager.tracker().read(DataClass::Aux, steps * 8);
        let page_idx = match self.fences.binary_search(&key) {
            Ok(i) => i,
            Err(0) => return Ok(None), // key below the run's first fence
            Err(i) => i - 1,
        };
        let recs = self.read_page(pager, page_idx)?;
        Ok(recs
            .binary_search_by_key(&key, |r| r.key)
            .ok()
            .map(|i| recs[i].value))
    }

    /// All entries with keys in `[lo, hi]`, ascending (tombstones
    /// included — the caller resolves versions across runs).
    pub fn range<D: BlockDevice>(
        &self,
        pager: &mut Pager<D>,
        lo: Key,
        hi: Key,
    ) -> Result<Vec<Record>> {
        if self.len == 0 || lo > hi {
            return Ok(Vec::new());
        }
        let steps = (self.fences.len().max(2) as f64).log2().ceil() as u64;
        pager.tracker().read(DataClass::Aux, steps * 8);
        let mut page_idx = match self.fences.binary_search(&lo) {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) => i - 1,
        };
        let mut out = Vec::new();
        while page_idx < self.pages.len() {
            if self.fences[page_idx] > hi {
                break;
            }
            let recs = self.read_page(pager, page_idx)?;
            for r in recs {
                if r.key > hi {
                    return Ok(out);
                }
                if r.key >= lo {
                    out.push(r);
                }
            }
            page_idx += 1;
        }
        Ok(out)
    }

    /// Read the whole run in order (for merges).
    pub fn scan_all<D: BlockDevice>(&self, pager: &mut Pager<D>) -> Result<Vec<Record>> {
        let mut out = Vec::with_capacity(self.len);
        for page_idx in 0..self.pages.len() {
            out.extend(self.read_page(pager, page_idx)?);
        }
        Ok(out)
    }

    /// Free the run's pages.
    pub fn destroy<D: BlockDevice>(self, pager: &mut Pager<D>) -> Result<()> {
        for id in self.pages {
            pager.free(id)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rum_core::CostTracker;
    use rum_storage::MemDevice;

    fn pager() -> Pager<MemDevice> {
        Pager::new(MemDevice::new(), CostTracker::new())
    }

    fn recs(n: u64) -> Vec<Record> {
        (0..n).map(|k| Record::new(k * 2, k)).collect()
    }

    #[test]
    fn build_and_probe() {
        let mut p = pager();
        let run = SortedRun::build(&mut p, &recs(1000), FilterKind::Bloom, 10.0).unwrap();
        assert_eq!(run.len(), 1000);
        assert_eq!(run.get(&mut p, 500).unwrap(), Some(250));
        assert_eq!(run.get(&mut p, 501).unwrap(), None);
        assert_eq!(run.get(&mut p, 0).unwrap(), Some(0));
        assert_eq!(run.get(&mut p, 1998).unwrap(), Some(999));
    }

    #[test]
    fn probe_reads_at_most_one_page() {
        let mut p = pager();
        let run = SortedRun::build(
            &mut p,
            &recs(64 * RECORDS_PER_PAGE as u64),
            FilterKind::Bloom,
            10.0,
        )
        .unwrap();
        let before = p.tracker().snapshot();
        run.get(&mut p, 12346).unwrap();
        let d = p.tracker().since(&before);
        assert_eq!(d.page_reads, 1, "fences route to exactly one page");
    }

    #[test]
    fn bloom_short_circuits_misses() {
        let mut p = pager();
        let run = SortedRun::build(&mut p, &recs(10_000), FilterKind::Bloom, 10.0).unwrap();
        let before = p.tracker().snapshot();
        let mut pages = 0;
        for k in 0..1000u64 {
            run.get(&mut p, 1_000_001 + k).unwrap();
            pages += 0;
        }
        let _ = pages;
        let d = p.tracker().since(&before);
        // ~1% FPR at 10 bits/key: almost no page reads for 1000 misses.
        assert!(d.page_reads < 50, "bloom failed to prune: {}", d.page_reads);
    }

    #[test]
    fn no_bloom_means_every_miss_reads_a_page() {
        let mut p = pager();
        let run = SortedRun::build(&mut p, &recs(10_000), FilterKind::Bloom, 0.0).unwrap();
        assert!(!run.has_bloom());
        let before = p.tracker().snapshot();
        for k in 0..100u64 {
            // In-domain misses (odd keys).
            run.get(&mut p, 2 * k + 1).unwrap();
        }
        let d = p.tracker().since(&before);
        assert_eq!(d.page_reads, 100);
    }

    #[test]
    fn range_is_inclusive_and_sequential() {
        let mut p = pager();
        let run = SortedRun::build(&mut p, &recs(5000), FilterKind::Bloom, 10.0).unwrap();
        let rs = run.range(&mut p, 100, 200).unwrap();
        let keys: Vec<u64> = rs.iter().map(|r| r.key).collect();
        assert_eq!(keys, (100..=200).step_by(2).collect::<Vec<_>>());
    }

    #[test]
    fn range_cost_scales_with_result() {
        let mut p = pager();
        let run = SortedRun::build(
            &mut p,
            &recs(64 * RECORDS_PER_PAGE as u64),
            FilterKind::Bloom,
            10.0,
        )
        .unwrap();
        let cost = |run: &SortedRun, p: &mut Pager<MemDevice>, span: u64| {
            let before = p.tracker().snapshot();
            run.range(p, 1000, 1000 + span).unwrap();
            p.tracker().since(&before).page_reads
        };
        let small = cost(&run, &mut p, 256);
        let large = cost(&run, &mut p, 256 * 64);
        assert!(large > small * 8, "{small} vs {large}");
    }

    #[test]
    fn scan_all_roundtrips() {
        let mut p = pager();
        let data = recs(3000);
        let run = SortedRun::build(&mut p, &data, FilterKind::Bloom, 5.0).unwrap();
        assert_eq!(run.scan_all(&mut p).unwrap(), data);
    }

    #[test]
    fn destroy_frees_pages() {
        let mut p = pager();
        let run = SortedRun::build(&mut p, &recs(1000), FilterKind::Bloom, 5.0).unwrap();
        assert!(p.live_pages() > 0);
        run.destroy(&mut p).unwrap();
        assert_eq!(p.live_pages(), 0);
    }

    #[test]
    fn empty_run() {
        let mut p = pager();
        let run = SortedRun::build(&mut p, &[], FilterKind::Bloom, 10.0).unwrap();
        assert!(run.is_empty());
        assert_eq!(run.get(&mut p, 5).unwrap(), None);
        assert!(run.range(&mut p, 0, 100).unwrap().is_empty());
    }
}
