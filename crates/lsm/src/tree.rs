//! The LSM-tree proper: memtable + levelled/tiered run hierarchy.

use std::collections::HashSet;
use std::sync::Arc;

use rum_core::trace::{EventKind, TraceSink};
use rum_core::{
    check_bulk_input, AccessMethod, CostSnapshot, CostTracker, Key, Record, Result, RumError,
    SpaceProfile, Value,
};
use rum_storage::{BlockDevice, CheckedDevice, MemDevice, Pager, RetryPolicy, ScrubReport};

use crate::memtable::Memtable;
use crate::run::{FilterKind, SortedRun};
use crate::view::SortedView;
use crate::TOMBSTONE;

/// How levels absorb runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CompactionPolicy {
    /// One run per level: every flush/overflow merges eagerly. Best reads
    /// and space, highest write amplification.
    Levelling,
    /// Up to `T` runs per level, merged only when the level fills. Lowest
    /// write amplification, more runs to probe (higher RO) and more
    /// overlapping versions (higher MO).
    Tiering,
}

/// LSM tuning knobs — `T` and `MEM` of Table 1 plus the §5 dynamic knobs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LsmConfig {
    /// Memtable capacity in records (`MEM`).
    pub memtable_records: usize,
    /// Size ratio between adjacent levels (`T`).
    pub size_ratio: usize,
    pub policy: CompactionPolicy,
    /// Bits per key for per-run point-probe filters; 0 disables them.
    pub bloom_bits_per_key: f64,
    /// Which filter family guards point probes (Bloom or quotient); the
    /// per-key budget above applies to either.
    pub filter: FilterKind,
    /// Maintain a REMIX-style cross-run [`SortedView`] so range queries
    /// pay one binary search instead of a probe per run. Buys RO with MO
    /// (the view's anchors) and UO (each lazy rebuild).
    pub sorted_view: bool,
}

impl Default for LsmConfig {
    fn default() -> Self {
        LsmConfig {
            memtable_records: 4096,
            size_ratio: 4,
            policy: CompactionPolicy::Levelling,
            bloom_bits_per_key: 10.0,
            filter: FilterKind::Bloom,
            sorted_view: false,
        }
    }
}

/// Shape diagnostics for experiments.
#[derive(Clone, Debug)]
pub struct LsmStats {
    /// `(runs, entries)` per level, top down.
    pub levels: Vec<(usize, usize)>,
    /// Entries in the memtable.
    pub memtable_entries: usize,
    /// Total entries across all runs (live + shadowed + tombstones).
    pub total_entries: usize,
    /// Compactions performed so far.
    pub compactions: u64,
}

/// The log-structured merge tree, generic over its backing
/// [`BlockDevice`] (in-memory by default; wrap the device in a
/// [`CheckedDevice`] to get checksum-sealed pages and [`scrub`]).
///
/// [`scrub`]: LsmTree::scrub
pub struct LsmTree<D: BlockDevice = MemDevice> {
    config: LsmConfig,
    memtable: Memtable,
    /// `levels[i]` holds the runs of level i, **oldest first**.
    levels: Vec<Vec<SortedRun>>,
    pager: Pager<D>,
    tracker: Arc<CostTracker>,
    /// Liveness oracle for `len()` and update/delete return values — not
    /// part of the structure (neither charged nor counted as space); an
    /// LSM cannot know liveness without reads, and the paper's UO model
    /// assumes blind writes.
    live: HashSet<Key>,
    compactions: u64,
    /// Structured-event channel for flush/compaction records; the disabled
    /// [`NoopSink`](rum_core::trace::NoopSink) by default.
    sink: Arc<dyn TraceSink>,
    /// Cross-run sorted view, present only when `config.sorted_view` and
    /// the run set has not changed since the last build (`None` = stale).
    view: Option<SortedView>,
}

impl LsmTree {
    pub fn new() -> Self {
        Self::with_config(LsmConfig::default())
    }

    pub fn with_config(config: LsmConfig) -> Self {
        Self::with_device(MemDevice::new(), config)
    }
}

impl<D: BlockDevice> LsmTree<D> {
    /// A tree over a caller-supplied device (e.g. a [`CheckedDevice`] for
    /// corruption detection, or a fault-injecting device for resilience
    /// experiments).
    pub fn with_device(device: D, config: LsmConfig) -> Self {
        assert!(config.size_ratio >= 2, "size ratio T must be >= 2");
        assert!(config.memtable_records >= 16, "memtable too small");
        let tracker = CostTracker::new();
        LsmTree {
            config,
            memtable: Memtable::new(),
            levels: Vec::new(),
            pager: Pager::new(device, Arc::clone(&tracker)),
            tracker,
            live: HashSet::new(),
            compactions: 0,
            sink: rum_core::trace::noop_sink(),
            view: None,
        }
    }

    /// The underlying block device.
    pub fn device(&self) -> &D {
        self.pager.device()
    }

    /// Mutable access to the underlying block device.
    pub fn device_mut(&mut self) -> &mut D {
        self.pager.device_mut()
    }

    /// How transient device faults are retried on every page the tree
    /// touches (see [`RetryPolicy`]; the default retries 3 times with
    /// exponential backoff).
    pub fn set_retry_policy(&mut self, retry: RetryPolicy) {
        self.pager.set_retry_policy(retry);
    }

    pub fn config(&self) -> &LsmConfig {
        &self.config
    }

    /// Toggle the cross-run sorted view in place — the one shape change
    /// that needs no drain-and-rebuild. Turning it on builds the view
    /// eagerly (the build's scan and anchors are charged to the tracker
    /// exactly like a lazy rebuild); turning it off drops the anchors and
    /// frees their MO. Run set and contents are untouched.
    pub fn set_sorted_view(&mut self, on: bool) -> Result<()> {
        self.config.sorted_view = on;
        if on {
            self.ensure_view()?;
        } else {
            self.invalidate_view();
        }
        Ok(())
    }

    /// Rebind this tree's cost charges to `tracker` (used by `retune`,
    /// which rebuilds the tree but must keep accounting continuous for
    /// callers holding clones of the original tracker).
    pub fn adopt_tracker(&mut self, tracker: Arc<CostTracker>) {
        self.tracker = Arc::clone(&tracker);
        self.pager.set_tracker(tracker);
    }

    pub fn stats(&self) -> LsmStats {
        LsmStats {
            levels: self
                .levels
                .iter()
                .map(|runs| (runs.len(), runs.iter().map(|r| r.len()).sum()))
                .collect(),
            memtable_entries: self.memtable.len(),
            total_entries: self
                .levels
                .iter()
                .flat_map(|runs| runs.iter())
                .map(|r| r.len())
                .sum(),
            compactions: self.compactions,
        }
    }

    /// Capacity of level `i` in records.
    fn capacity(&self, level: usize) -> usize {
        self.config
            .memtable_records
            .saturating_mul(self.config.size_ratio.pow(level as u32 + 1))
    }

    fn ensure_level(&mut self, i: usize) {
        while self.levels.len() <= i {
            self.levels.push(Vec::new());
        }
    }

    /// Whether every level strictly below `level` is empty.
    fn is_bottom(&self, level: usize) -> bool {
        self.levels
            .iter()
            .skip(level + 1)
            .all(|runs| runs.is_empty())
    }

    /// Merge record streams ordered **oldest → newest**, newest version
    /// winning; optionally drop tombstones (safe only at the bottom).
    fn merge_streams(inputs: Vec<Vec<Record>>, drop_tombstones: bool) -> Vec<Record> {
        let mut map = std::collections::BTreeMap::new();
        for stream in inputs {
            for r in stream {
                map.insert(r.key, r.value);
            }
        }
        map.into_iter()
            .filter(|&(_, v)| !(drop_tombstones && v == TOMBSTONE))
            .map(|(k, v)| Record::new(k, v))
            .collect()
    }

    /// Resident bytes of the sorted view (0 when disabled or stale).
    pub fn view_bytes(&self) -> u64 {
        self.view.as_ref().map_or(0, |v| v.size_bytes())
    }

    /// Drop the sorted view because the run set is about to change. The
    /// next view-enabled range query rebuilds it lazily.
    fn invalidate_view(&mut self) {
        if let Some(v) = self.view.take() {
            if self.sink.enabled() {
                self.sink.emit(
                    EventKind::LsmViewInvalidate,
                    &[("entries", v.len() as u64), ("bytes", v.size_bytes())],
                );
            }
        }
    }

    /// Build the sorted view if it is stale. The scan's read traffic is
    /// re-classed as auxiliary **write** bytes (UO): materialising the
    /// view is maintenance spent to cheapen future reads, the same way a
    /// compaction's traffic is, so leaving it on the read side would let
    /// the view hide its own cost inside the RO it is supposed to lower.
    fn ensure_view(&mut self) -> Result<()> {
        if self.view.is_some() {
            return Ok(());
        }
        let scratch = CostTracker::new();
        self.pager.set_tracker(Arc::clone(&scratch));
        let (levels, pager) = (&self.levels, &mut self.pager);
        let runs: Vec<&SortedRun> = levels.iter().rev().flat_map(|l| l.iter()).collect();
        let built = SortedView::build(pager, &runs);
        self.pager.set_tracker(Arc::clone(&self.tracker));
        let view = built?;
        let d = scratch.snapshot();
        self.tracker.absorb(&CostSnapshot {
            aux_write_bytes: d.total_read_bytes() + view.size_bytes(),
            page_writes: d.page_reads,
            sim_time_ns: d.sim_time_ns,
            ..Default::default()
        });
        if self.sink.enabled() {
            self.sink.emit(
                EventKind::LsmViewBuild,
                &[
                    ("entries", view.len() as u64),
                    ("bytes", view.size_bytes()),
                    ("read_bytes", d.total_read_bytes()),
                ],
            );
        }
        self.view = Some(view);
        Ok(())
    }

    fn place_run(&mut self, level: usize, records: Vec<Record>) -> Result<()> {
        // Any change to the run set strands the view's anchors.
        self.invalidate_view();
        self.ensure_level(level);
        if records.is_empty() {
            return Ok(());
        }
        let run = SortedRun::build(
            &mut self.pager,
            &records,
            self.config.filter,
            self.config.bloom_bits_per_key,
        )?;
        self.levels[level].push(run);
        Ok(())
    }

    /// Restore level-size invariants after new data arrived at `from`.
    fn compact_from(&mut self, from: usize) -> Result<()> {
        let mut level = from;
        loop {
            self.ensure_level(level);
            let trigger = match self.config.policy {
                CompactionPolicy::Levelling => {
                    let entries: usize = self.levels[level].iter().map(|r| r.len()).sum();
                    entries > self.capacity(level)
                }
                CompactionPolicy::Tiering => self.levels[level].len() >= self.config.size_ratio,
            };
            if !trigger {
                return Ok(());
            }
            let traced = self.sink.enabled();
            let before = traced.then(|| self.tracker.snapshot());
            // Merge everything at `level` plus (for levelling) the run
            // already at level+1, and place the result at level+1.
            self.ensure_level(level + 1);
            let mut inputs: Vec<Vec<Record>> = Vec::new();
            let mut to_destroy = Vec::new();
            if self.config.policy == CompactionPolicy::Levelling {
                for run in std::mem::take(&mut self.levels[level + 1]) {
                    inputs.push(run.scan_all(&mut self.pager)?);
                    to_destroy.push(run);
                }
            }
            // Oldest first within the level.
            for run in std::mem::take(&mut self.levels[level]) {
                inputs.push(run.scan_all(&mut self.pager)?);
                to_destroy.push(run);
            }
            // Tombstones may be dropped only when every older version is
            // part of this merge: nothing deeper than level+1, and (for
            // tiering, which does not consume level+1's runs) level+1
            // itself must be empty.
            let drop_tomb = match self.config.policy {
                CompactionPolicy::Levelling => self.is_bottom(level + 1),
                CompactionPolicy::Tiering => {
                    self.levels[level + 1].is_empty() && self.is_bottom(level + 1)
                }
            };
            let records_in: usize = inputs.iter().map(Vec::len).sum();
            let merged = Self::merge_streams(inputs, drop_tomb);
            let records_out = merged.len();
            for run in to_destroy {
                run.destroy(&mut self.pager)?;
            }
            self.place_run(level + 1, merged)?;
            self.compactions += 1;
            if let Some(before) = before {
                let d = self.tracker.since(&before);
                self.sink.emit(
                    EventKind::LsmCompaction,
                    &[
                        ("level", level as u64),
                        ("to_level", level as u64 + 1),
                        ("records_in", records_in as u64),
                        ("records_out", records_out as u64),
                        ("read_bytes", d.total_read_bytes()),
                        ("bytes", d.total_write_bytes()),
                    ],
                );
            }
            level += 1;
        }
    }
}

impl Default for LsmTree {
    fn default() -> Self {
        Self::new()
    }
}

/// Walk every live run page behind the checksum seal (see
/// [`Pager::scrub`]): proactive detection of silent corruption, charged
/// as auxiliary reads.
impl<D: BlockDevice> LsmTree<CheckedDevice<D>> {
    pub fn scrub(&mut self) -> Result<ScrubReport> {
        self.pager.scrub()
    }
}

impl<D: BlockDevice> AccessMethod for LsmTree<D> {
    fn name(&self) -> String {
        let base = match self.config.policy {
            CompactionPolicy::Levelling => "lsm-tree",
            CompactionPolicy::Tiering => "lsm-tree-tiered",
        };
        if self.config.sorted_view {
            format!("{base}+view")
        } else {
            base.into()
        }
    }

    fn len(&self) -> usize {
        self.live.len()
    }

    fn tracker(&self) -> &Arc<CostTracker> {
        &self.tracker
    }

    fn space_profile(&self) -> SpaceProfile {
        let aux: u64 = self
            .levels
            .iter()
            .flat_map(|runs| runs.iter())
            .map(|r| r.aux_bytes())
            .sum();
        let physical =
            self.pager.physical_bytes() + aux + self.memtable.size_bytes() + self.view_bytes();
        SpaceProfile::from_physical(self.live.len(), physical)
    }

    fn get_impl(&mut self, key: Key) -> Result<Option<Value>> {
        if let Some(v) = self.memtable.get(key, &self.tracker) {
            return Ok(if v == TOMBSTONE { None } else { Some(v) });
        }
        // Top level first; within a level, newest run first.
        let (levels, pager) = (&self.levels, &mut self.pager);
        for level in levels {
            for run in level.iter().rev() {
                if let Some(v) = run.get(pager, key)? {
                    return Ok(if v == TOMBSTONE { None } else { Some(v) });
                }
            }
        }
        Ok(None)
    }

    fn range_impl(&mut self, lo: Key, hi: Key) -> Result<Vec<Record>> {
        if lo > hi {
            return Err(RumError::InvalidArgument(format!(
                "inverted range {lo}..{hi}"
            )));
        }
        if self.config.sorted_view {
            self.ensure_view()?;
            // Snapshot after ensure_view so the hit event prices the
            // query itself, not a rebuild it happened to trigger.
            let before = self.sink.enabled().then(|| self.tracker.snapshot());
            let LsmTree {
                levels,
                pager,
                view,
                ..
            } = self;
            let runs: Vec<&SortedRun> = levels.iter().rev().flat_map(|l| l.iter()).collect();
            let on_disk = view
                .as_ref()
                .expect("ensure_view just built it")
                .range(pager, &runs, lo, hi)?;
            let mem = self.memtable.range(lo, hi, &self.tracker);
            let out = Self::merge_streams(vec![on_disk, mem], true);
            if let Some(before) = before {
                let d = self.tracker.since(&before);
                self.sink.emit(
                    EventKind::LsmViewHit,
                    &[
                        ("records", out.len() as u64),
                        ("read_bytes", d.total_read_bytes()),
                    ],
                );
            }
            return Ok(out);
        }
        // Oldest sources first so newer versions overwrite.
        let mut inputs: Vec<Vec<Record>> = Vec::new();
        let (levels, pager) = (&self.levels, &mut self.pager);
        for level in levels.iter().rev() {
            for run in level.iter() {
                // Envelope pruning: a run whose [min, max] is disjoint
                // from the query cannot contribute — skip it for free.
                if !run.overlaps(lo, hi) {
                    continue;
                }
                inputs.push(run.range(pager, lo, hi)?);
            }
        }
        inputs.push(self.memtable.range(lo, hi, &self.tracker));
        Ok(Self::merge_streams(inputs, true))
    }

    fn insert_impl(&mut self, key: Key, value: Value) -> Result<()> {
        if value == TOMBSTONE {
            return Err(RumError::InvalidArgument(
                "value u64::MAX is reserved as the tombstone sentinel".into(),
            ));
        }
        self.memtable.put(key, value, &self.tracker);
        self.live.insert(key);
        if self.memtable.len() >= self.config.memtable_records {
            self.flush()?;
        }
        Ok(())
    }

    fn update_impl(&mut self, key: Key, value: Value) -> Result<bool> {
        if value == TOMBSTONE {
            return Err(RumError::InvalidArgument(
                "value u64::MAX is reserved as the tombstone sentinel".into(),
            ));
        }
        if !self.live.contains(&key) {
            return Ok(false);
        }
        self.memtable.put(key, value, &self.tracker);
        if self.memtable.len() >= self.config.memtable_records {
            self.flush()?;
        }
        Ok(true)
    }

    fn delete_impl(&mut self, key: Key) -> Result<bool> {
        if !self.live.remove(&key) {
            return Ok(false);
        }
        self.memtable.put(key, TOMBSTONE, &self.tracker);
        if self.memtable.len() >= self.config.memtable_records {
            self.flush()?;
        }
        Ok(true)
    }

    fn bulk_load_impl(&mut self, records: &[Record]) -> Result<()> {
        check_bulk_input(records)?;
        if records.iter().any(|r| r.value == TOMBSTONE) {
            return Err(RumError::InvalidArgument(
                "value u64::MAX is reserved as the tombstone sentinel".into(),
            ));
        }
        // Tear down.
        self.invalidate_view();
        self.memtable = Memtable::new();
        for runs in std::mem::take(&mut self.levels) {
            for run in runs {
                run.destroy(&mut self.pager)?;
            }
        }
        self.live = records.iter().map(|r| r.key).collect();
        // One run at the shallowest level that fits it.
        let mut level = 0;
        while self.capacity(level) < records.len() {
            level += 1;
        }
        self.place_run(level, records.to_vec())
    }

    /// Flush the memtable and run compactions to restore invariants.
    fn flush(&mut self) -> Result<()> {
        if self.memtable.is_empty() {
            return Ok(());
        }
        let traced = self.sink.enabled();
        let before = traced.then(|| self.tracker.snapshot());
        let fresh = self.memtable.drain_sorted();
        let records_in = fresh.len();
        let records_out;
        match self.config.policy {
            CompactionPolicy::Levelling => {
                // Merge with the existing level-0 run eagerly.
                self.ensure_level(0);
                let old: Vec<SortedRun> = std::mem::take(&mut self.levels[0]);
                let mut inputs = Vec::new();
                let mut doomed = Vec::new();
                for run in old {
                    inputs.push(run.scan_all(&mut self.pager)?);
                    doomed.push(run);
                }
                inputs.push(fresh);
                let drop_tomb = self.is_bottom(0);
                let merged = Self::merge_streams(inputs, drop_tomb);
                records_out = merged.len();
                for run in doomed {
                    run.destroy(&mut self.pager)?;
                }
                self.place_run(0, merged)?;
            }
            CompactionPolicy::Tiering => {
                records_out = fresh.len();
                self.place_run(0, fresh)?;
            }
        }
        if let Some(before) = before {
            // Bytes of the flush itself; the compactions it triggers below
            // report their own traffic in their own events.
            let d = self.tracker.since(&before);
            self.sink.emit(
                EventKind::LsmFlush,
                &[
                    ("level", 0),
                    ("records_in", records_in as u64),
                    ("records_out", records_out as u64),
                    ("read_bytes", d.total_read_bytes()),
                    ("bytes", d.total_write_bytes()),
                ],
            );
        }
        self.compact_from(0)
    }

    /// Keep the sink for flush/compaction events and forward it to the
    /// pager (fault/retry/corruption events). The tree only observes the
    /// tracker through it, so installing a sink never changes a counted
    /// byte.
    fn set_trace_sink(&mut self, sink: Arc<dyn TraceSink>) {
        self.pager.set_trace_sink(Arc::clone(&sink));
        self.sink = sink;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rum_core::RECORDS_PER_PAGE;

    fn small_config(policy: CompactionPolicy) -> LsmConfig {
        LsmConfig {
            memtable_records: 64,
            size_ratio: 3,
            policy,
            bloom_bits_per_key: 10.0,
            ..Default::default()
        }
    }

    #[test]
    fn crud_roundtrip_levelling() {
        let mut t = LsmTree::with_config(small_config(CompactionPolicy::Levelling));
        for k in 0..500u64 {
            t.insert(k, k * 2).unwrap();
        }
        assert_eq!(t.len(), 500);
        assert_eq!(t.get(123).unwrap(), Some(246));
        assert_eq!(t.get(999).unwrap(), None);
        assert!(t.update(123, 1).unwrap());
        assert!(!t.update(9999, 0).unwrap());
        assert_eq!(t.get(123).unwrap(), Some(1));
        assert!(t.delete(123).unwrap());
        assert!(!t.delete(123).unwrap());
        assert_eq!(t.get(123).unwrap(), None);
        assert_eq!(t.len(), 499);
    }

    #[test]
    fn crud_roundtrip_tiering() {
        let mut t = LsmTree::with_config(small_config(CompactionPolicy::Tiering));
        for k in 0..500u64 {
            t.insert(k, k * 2).unwrap();
        }
        assert_eq!(t.get(321).unwrap(), Some(642));
        assert!(t.delete(321).unwrap());
        assert_eq!(t.get(321).unwrap(), None);
        // Deleted key stays deleted across flushes and compactions.
        for k in 1000..2000u64 {
            t.insert(k, 0).unwrap();
        }
        assert_eq!(t.get(321).unwrap(), None);
    }

    #[test]
    fn newest_version_wins_across_levels() {
        let mut t = LsmTree::with_config(small_config(CompactionPolicy::Tiering));
        t.insert(7, 1).unwrap();
        // Push key 7's first version deep by inserting lots of other keys.
        for k in 100..800u64 {
            t.insert(k, 0).unwrap();
        }
        t.insert(7, 2).unwrap();
        for k in 800..1000u64 {
            t.insert(k, 0).unwrap();
        }
        assert_eq!(t.get(7).unwrap(), Some(2));
        let rs = t.range(7, 7).unwrap();
        assert_eq!(rs, vec![Record::new(7, 2)]);
    }

    #[test]
    fn levels_respect_size_ratio() {
        let mut t = LsmTree::with_config(small_config(CompactionPolicy::Levelling));
        for k in 0..5000u64 {
            t.insert(k, k).unwrap();
        }
        let stats = t.stats();
        assert!(stats.levels.len() >= 2);
        for (runs, _) in &stats.levels {
            assert!(*runs <= 1, "levelling keeps one run per level");
        }
        // Levels grow roughly by T.
        let sizes: Vec<usize> = stats.levels.iter().map(|&(_, n)| n).collect();
        for w in sizes.windows(2) {
            if w[0] > 0 && w[1] > 0 {
                assert!(w[1] >= w[0], "deeper levels are larger: {sizes:?}");
            }
        }
    }

    #[test]
    fn tiering_has_fewer_compactions_than_levelling() {
        let run = |policy| {
            let mut t = LsmTree::with_config(small_config(policy));
            for k in 0..20_000u64 {
                t.insert(k, k).unwrap();
            }
            (
                t.stats().compactions,
                t.tracker().snapshot().total_write_bytes(),
            )
        };
        let (lc, lw) = run(CompactionPolicy::Levelling);
        let (tc, tw) = run(CompactionPolicy::Tiering);
        let _ = (lc, tc);
        assert!(
            tw < lw,
            "tiering must write less than levelling: {tw} vs {lw}"
        );
    }

    #[test]
    fn insert_write_amplification_is_low() {
        // The headline LSM property: amortized insert cost ≪ B-tree's
        // page-per-insert.
        let mut t = LsmTree::with_config(LsmConfig {
            memtable_records: 1024,
            size_ratio: 4,
            policy: CompactionPolicy::Levelling,
            bloom_bits_per_key: 10.0,
            ..Default::default()
        });
        for k in 0..50_000u64 {
            t.insert(k, k).unwrap();
        }
        let s = t.tracker().snapshot();
        let uo = s.write_amplification();
        // Levelling UO ≈ T × levels; with T=4 and ~3-4 levels that is ~16,
        // far below the B-tree's B = 256.
        assert!(uo < 64.0, "write amplification {uo} unexpectedly high");
        assert!(uo > 1.0);
    }

    #[test]
    fn point_reads_probe_runs_not_levels_of_pages() {
        let mut t = LsmTree::with_config(LsmConfig {
            memtable_records: 1024,
            size_ratio: 4,
            policy: CompactionPolicy::Levelling,
            bloom_bits_per_key: 10.0,
            ..Default::default()
        });
        for k in 0..50_000u64 {
            t.insert(k, k).unwrap();
        }
        let before = t.tracker().snapshot();
        for k in (0..50_000u64).step_by(991) {
            assert_eq!(t.get(k).unwrap(), Some(k));
        }
        let probes = 50_000 / 991 + 1;
        let d = t.tracker().since(&before);
        let per_op = d.page_reads as f64 / probes as f64;
        // With blooms, most hits read ~1 page (the one run that has it).
        assert!(per_op < 4.0, "pages per point read: {per_op}");
    }

    #[test]
    fn blooms_cut_miss_cost() {
        let build = |bits: f64| {
            let mut t = LsmTree::with_config(LsmConfig {
                memtable_records: 512,
                size_ratio: 3,
                policy: CompactionPolicy::Tiering,
                bloom_bits_per_key: bits,
                ..Default::default()
            });
            for k in 0..20_000u64 {
                t.insert(k * 2, k).unwrap();
            }
            let before = t.tracker().snapshot();
            for k in 0..2000u64 {
                t.get(2 * k + 1).unwrap(); // in-domain misses
            }
            t.tracker().since(&before).page_reads
        };
        let with_bloom = build(10.0);
        let without = build(0.0);
        assert!(
            with_bloom * 5 < without,
            "blooms should cut miss reads: {with_bloom} vs {without}"
        );
    }

    #[test]
    fn range_spans_levels() {
        let mut t = LsmTree::with_config(small_config(CompactionPolicy::Tiering));
        for k in (0..3000u64).rev() {
            t.insert(k, k + 1).unwrap();
        }
        t.update(1500, 99).unwrap();
        t.delete(1501).unwrap();
        let rs = t.range(1498, 1503).unwrap();
        assert_eq!(
            rs,
            vec![
                Record::new(1498, 1499),
                Record::new(1499, 1500),
                Record::new(1500, 99),
                Record::new(1502, 1503),
                Record::new(1503, 1504),
            ]
        );
    }

    #[test]
    fn bulk_load_builds_single_run() {
        let recs: Vec<Record> = (0..10_000u64).map(|k| Record::new(k, k)).collect();
        let mut t = LsmTree::new();
        t.bulk_load(&recs).unwrap();
        let stats = t.stats();
        let total_runs: usize = stats.levels.iter().map(|&(r, _)| r).sum();
        assert_eq!(total_runs, 1);
        assert_eq!(t.len(), 10_000);
        assert_eq!(t.get(5000).unwrap(), Some(5000));
    }

    #[test]
    fn tombstones_disappear_at_the_bottom() {
        let mut t = LsmTree::with_config(small_config(CompactionPolicy::Levelling));
        for k in 0..1000u64 {
            t.insert(k, k).unwrap();
        }
        for k in 0..1000u64 {
            t.delete(k).unwrap();
        }
        // Force everything through the hierarchy.
        AccessMethod::flush(&mut t).unwrap();
        let stats = t.stats();
        assert_eq!(t.len(), 0);
        // After full merges the bottom run should hold nothing (or nearly
        // nothing if intermediate levels still shelter tombstones).
        assert!(
            stats.total_entries <= 1000,
            "tombstone GC failed: {} entries",
            stats.total_entries
        );
        assert_eq!(t.range(0, u64::MAX).unwrap(), vec![]);
    }

    #[test]
    fn space_amplification_bounded_by_ratio() {
        let mut t = LsmTree::with_config(LsmConfig {
            memtable_records: 512,
            size_ratio: 4,
            policy: CompactionPolicy::Levelling,
            bloom_bits_per_key: 10.0,
            ..Default::default()
        });
        for k in 0..40_000u64 {
            t.insert(k, k).unwrap();
        }
        // Overwrite everything once to create shadowed versions.
        for k in 0..40_000u64 {
            t.update(k, k + 1).unwrap();
        }
        let mo = t.space_profile().space_amplification();
        assert!(mo < 3.0, "levelled MO should stay near T/(T-1): {mo}");
    }

    #[test]
    fn model_check_random_ops() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        for policy in [CompactionPolicy::Levelling, CompactionPolicy::Tiering] {
            let mut rng = StdRng::seed_from_u64(71);
            let mut t = LsmTree::with_config(small_config(policy));
            let mut model = std::collections::BTreeMap::new();
            for step in 0..4000u64 {
                let k = rng.gen_range(0..1200u64);
                match rng.gen_range(0..6) {
                    0 | 1 => {
                        t.insert(k, step).unwrap();
                        model.insert(k, step);
                    }
                    2 => {
                        assert_eq!(t.update(k, step).unwrap(), model.contains_key(&k));
                        model.entry(k).and_modify(|v| *v = step);
                    }
                    3 => {
                        assert_eq!(t.delete(k).unwrap(), model.remove(&k).is_some());
                    }
                    4 => {
                        assert_eq!(t.get(k).unwrap(), model.get(&k).copied(), "step {step}");
                    }
                    _ => {
                        let hi = k + rng.gen_range(0..50u64);
                        let got = t.range(k, hi).unwrap();
                        let expect: Vec<Record> = model
                            .range(k..=hi)
                            .map(|(&k, &v)| Record::new(k, v))
                            .collect();
                        assert_eq!(got, expect, "range {k}..{hi} at step {step}");
                    }
                }
                assert_eq!(t.len(), model.len());
            }
        }
    }

    #[test]
    fn rejects_tombstone_value() {
        let mut t = LsmTree::new();
        assert!(t.insert(1, TOMBSTONE).is_err());
    }

    #[test]
    fn larger_ratio_means_fewer_levels() {
        let depth = |ratio: usize| {
            let mut t = LsmTree::with_config(LsmConfig {
                memtable_records: 256,
                size_ratio: ratio,
                policy: CompactionPolicy::Levelling,
                bloom_bits_per_key: 10.0,
                ..Default::default()
            });
            for k in 0..40_000u64 {
                t.insert(k, k).unwrap();
            }
            // Depth = deepest level holding data (transiently empty upper
            // levels don't count against the hierarchy's depth).
            t.stats()
                .levels
                .iter()
                .rposition(|&(_, n)| n > 0)
                .map(|i| i + 1)
                .unwrap_or(0)
        };
        let deep = depth(2);
        let shallow = depth(10);
        assert!(shallow < deep, "T=10 ({shallow}) vs T=2 ({deep})");
        let _ = RECORDS_PER_PAGE;
    }

    #[test]
    fn pruned_run_charges_zero_reads() {
        // Two disjoint key clusters end up in separate runs under tiering
        // (no eager merging); a range inside one cluster must not charge
        // a single read byte against the other run.
        let mut t = LsmTree::with_config(LsmConfig {
            memtable_records: 64,
            size_ratio: 10,
            policy: CompactionPolicy::Tiering,
            bloom_bits_per_key: 0.0,
            ..Default::default()
        });
        for k in 0..64u64 {
            t.insert(k, k).unwrap();
        }
        AccessMethod::flush(&mut t).unwrap();
        for k in 10_000..10_064u64 {
            t.insert(k, k).unwrap();
        }
        AccessMethod::flush(&mut t).unwrap();
        let runs: usize = t.stats().levels.iter().map(|&(r, _)| r).sum();
        assert_eq!(runs, 2, "setup should leave two disjoint runs");
        // Cost of a range confined to the low cluster...
        let before = t.tracker().snapshot();
        assert_eq!(t.range(0, 63).unwrap().len(), 64);
        let with_other_run = t.tracker().since(&before);
        // ...equals the cost of the same range on a tree holding only
        // the low cluster: the disjoint run contributed zero reads.
        let mut solo = LsmTree::with_config(LsmConfig {
            memtable_records: 64,
            size_ratio: 10,
            policy: CompactionPolicy::Tiering,
            bloom_bits_per_key: 0.0,
            ..Default::default()
        });
        for k in 0..64u64 {
            solo.insert(k, k).unwrap();
        }
        AccessMethod::flush(&mut solo).unwrap();
        let before = solo.tracker().snapshot();
        assert_eq!(solo.range(0, 63).unwrap().len(), 64);
        let alone = solo.tracker().since(&before);
        assert_eq!(
            with_other_run.total_read_bytes(),
            alone.total_read_bytes(),
            "pruned run must charge zero reads"
        );
        assert_eq!(with_other_run.page_reads, alone.page_reads);
    }

    #[test]
    fn view_ranges_match_disabled_tree() {
        for policy in [CompactionPolicy::Levelling, CompactionPolicy::Tiering] {
            let mut plain = LsmTree::with_config(small_config(policy));
            let mut viewed = LsmTree::with_config(LsmConfig {
                sorted_view: true,
                ..small_config(policy)
            });
            for k in 0..1500u64 {
                for t in [&mut plain, &mut viewed] {
                    t.insert(k * 3 % 1501, k).unwrap();
                }
            }
            for k in (0..1500u64).step_by(7) {
                for t in [&mut plain, &mut viewed] {
                    t.delete(k).unwrap();
                }
            }
            for (lo, hi) in [(0, 1500), (100, 250), (1499, 1499), (0, u64::MAX)] {
                assert_eq!(
                    plain.range(lo, hi).unwrap(),
                    viewed.range(lo, hi).unwrap(),
                    "policy {policy:?} range {lo}..{hi}"
                );
            }
            // Results must also stay identical when the memtable holds
            // newer versions and tombstones than the viewed runs.
            for t in [&mut plain, &mut viewed] {
                t.insert(200, 9999).unwrap();
                t.delete(201).unwrap();
            }
            assert_eq!(
                plain.range(195, 205).unwrap(),
                viewed.range(195, 205).unwrap()
            );
        }
    }

    #[test]
    fn view_cuts_range_reads_and_costs_memory() {
        // The shape the view exists for: a big sorted base plus a trickle
        // of fresh runs that each span the whole key domain. The probe-
        // every-run path pays a fence search and a boundary page on every
        // fresh run for every query; the view touches only pages that
        // actually hold a newest version inside the range.
        let build = |view: bool| {
            let mut t = LsmTree::with_config(LsmConfig {
                memtable_records: 256,
                size_ratio: 8,
                policy: CompactionPolicy::Tiering,
                sorted_view: view,
                ..Default::default()
            });
            let recs: Vec<Record> = (0..30_000u64).map(|k| Record::new(k, k)).collect();
            t.bulk_load(&recs).unwrap();
            for k in 0..1200u64 {
                t.insert(k.wrapping_mul(7919) % 30_000, k).unwrap();
            }
            let before = t.tracker().snapshot();
            let mut total = 0usize;
            for lo in (0..29_000u64).step_by(500) {
                total += t.range(lo, lo + 15).unwrap().len();
            }
            assert_eq!(total, 58 * 16);
            (
                t.tracker().since(&before).total_read_bytes(),
                t.view_bytes(),
            )
        };
        let (ro_off, vb_off) = build(false);
        let (ro_on, vb_on) = build(true);
        assert_eq!(vb_off, 0);
        assert!(vb_on > 0, "enabled view must report resident bytes");
        assert!(
            ro_on * 2 <= ro_off,
            "view should at least halve range RO: {ro_on} vs {ro_off}"
        );
    }

    #[test]
    fn view_rebuild_is_charged_as_aux_writes() {
        let mut t = LsmTree::with_config(LsmConfig {
            memtable_records: 64,
            size_ratio: 3,
            sorted_view: true,
            ..Default::default()
        });
        for k in 0..1000u64 {
            t.insert(k, k).unwrap();
        }
        AccessMethod::flush(&mut t).unwrap();
        let before = t.tracker().snapshot();
        t.range(0, 10).unwrap(); // triggers the lazy build
        let d = t.tracker().since(&before);
        assert!(
            d.aux_write_bytes >= t.view_bytes(),
            "build must charge at least the view bytes as UO: {} vs {}",
            d.aux_write_bytes,
            t.view_bytes()
        );
        // The build's scan was re-classed: the only base reads surfaced
        // are the query's own single page, not the full-tree scan.
        assert!(d.page_reads <= 1, "build reads must land on UO, not RO");
        // A second range hits the cached view: no further build charge.
        let before = t.tracker().snapshot();
        t.range(0, 10).unwrap();
        assert_eq!(t.tracker().since(&before).aux_write_bytes, 0);
        // Mutating invalidates; the next range rebuilds.
        t.insert(5000, 1).unwrap();
        AccessMethod::flush(&mut t).unwrap();
        assert_eq!(t.view_bytes(), 0, "flush must invalidate the view");
        t.range(0, 10).unwrap();
        assert!(t.view_bytes() > 0);
    }

    #[test]
    fn quotient_filter_matches_bloom_semantics() {
        let build = |filter: FilterKind, bits: f64| {
            let mut t = LsmTree::with_config(LsmConfig {
                memtable_records: 256,
                size_ratio: 3,
                policy: CompactionPolicy::Tiering,
                filter,
                bloom_bits_per_key: bits,
                ..Default::default()
            });
            for k in 0..10_000u64 {
                t.insert(k * 2, k).unwrap();
            }
            // Hits stay correct under either filter...
            for k in 0..1000u64 {
                assert_eq!(t.get(4 * k).unwrap(), Some(2 * k));
            }
            // ...and out-of-domain misses price the filter's worth.
            let before = t.tracker().snapshot();
            for k in 0..1000u64 {
                assert_eq!(t.get(2 * (k + 20_000) + 1).unwrap(), None);
            }
            let miss_reads = t.tracker().since(&before).page_reads;
            (miss_reads, t.space_profile().total_bytes())
        };
        let (bloom_reads, bloom_bytes) = build(FilterKind::Bloom, 10.0);
        let (q_reads, q_bytes) = build(FilterKind::Quotient { rbits: 10 }, 10.0);
        let (bare_reads, bare_bytes) = build(FilterKind::Bloom, 0.0);
        // Both filter kinds prune the vast majority of miss probes.
        assert!(
            bloom_reads * 5 < bare_reads,
            "{bloom_reads} vs {bare_reads}"
        );
        assert!(q_reads * 5 < bare_reads, "{q_reads} vs {bare_reads}");
        // Both charge their resident bytes as space (MO above filterless).
        assert!(bloom_bytes > bare_bytes);
        assert!(q_bytes > bare_bytes);
    }
}
