//! The LSM-tree proper: memtable + levelled/tiered run hierarchy.

use std::collections::HashSet;
use std::sync::Arc;

use rum_core::trace::{EventKind, TraceSink};
use rum_core::{
    check_bulk_input, AccessMethod, CostTracker, Key, Record, Result, RumError, SpaceProfile, Value,
};
use rum_storage::{MemDevice, Pager};

use crate::memtable::Memtable;
use crate::run::SortedRun;
use crate::TOMBSTONE;

/// How levels absorb runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CompactionPolicy {
    /// One run per level: every flush/overflow merges eagerly. Best reads
    /// and space, highest write amplification.
    Levelling,
    /// Up to `T` runs per level, merged only when the level fills. Lowest
    /// write amplification, more runs to probe (higher RO) and more
    /// overlapping versions (higher MO).
    Tiering,
}

/// LSM tuning knobs — `T` and `MEM` of Table 1 plus the §5 dynamic knobs.
#[derive(Clone, Copy, Debug)]
pub struct LsmConfig {
    /// Memtable capacity in records (`MEM`).
    pub memtable_records: usize,
    /// Size ratio between adjacent levels (`T`).
    pub size_ratio: usize,
    pub policy: CompactionPolicy,
    /// Bits per key for per-run Bloom filters; 0 disables them.
    pub bloom_bits_per_key: f64,
}

impl Default for LsmConfig {
    fn default() -> Self {
        LsmConfig {
            memtable_records: 4096,
            size_ratio: 4,
            policy: CompactionPolicy::Levelling,
            bloom_bits_per_key: 10.0,
        }
    }
}

/// Shape diagnostics for experiments.
#[derive(Clone, Debug)]
pub struct LsmStats {
    /// `(runs, entries)` per level, top down.
    pub levels: Vec<(usize, usize)>,
    /// Entries in the memtable.
    pub memtable_entries: usize,
    /// Total entries across all runs (live + shadowed + tombstones).
    pub total_entries: usize,
    /// Compactions performed so far.
    pub compactions: u64,
}

/// The log-structured merge tree.
pub struct LsmTree {
    config: LsmConfig,
    memtable: Memtable,
    /// `levels[i]` holds the runs of level i, **oldest first**.
    levels: Vec<Vec<SortedRun>>,
    pager: Pager<MemDevice>,
    tracker: Arc<CostTracker>,
    /// Liveness oracle for `len()` and update/delete return values — not
    /// part of the structure (neither charged nor counted as space); an
    /// LSM cannot know liveness without reads, and the paper's UO model
    /// assumes blind writes.
    live: HashSet<Key>,
    compactions: u64,
    /// Structured-event channel for flush/compaction records; the disabled
    /// [`NoopSink`](rum_core::trace::NoopSink) by default.
    sink: Arc<dyn TraceSink>,
}

impl LsmTree {
    pub fn new() -> Self {
        Self::with_config(LsmConfig::default())
    }

    pub fn with_config(config: LsmConfig) -> Self {
        assert!(config.size_ratio >= 2, "size ratio T must be >= 2");
        assert!(config.memtable_records >= 16, "memtable too small");
        let tracker = CostTracker::new();
        LsmTree {
            config,
            memtable: Memtable::new(),
            levels: Vec::new(),
            pager: Pager::new(MemDevice::new(), Arc::clone(&tracker)),
            tracker,
            live: HashSet::new(),
            compactions: 0,
            sink: rum_core::trace::noop_sink(),
        }
    }

    pub fn config(&self) -> &LsmConfig {
        &self.config
    }

    /// Rebind this tree's cost charges to `tracker` (used by `retune`,
    /// which rebuilds the tree but must keep accounting continuous for
    /// callers holding clones of the original tracker).
    pub fn adopt_tracker(&mut self, tracker: Arc<CostTracker>) {
        self.tracker = Arc::clone(&tracker);
        self.pager.set_tracker(tracker);
    }

    pub fn stats(&self) -> LsmStats {
        LsmStats {
            levels: self
                .levels
                .iter()
                .map(|runs| (runs.len(), runs.iter().map(|r| r.len()).sum()))
                .collect(),
            memtable_entries: self.memtable.len(),
            total_entries: self
                .levels
                .iter()
                .flat_map(|runs| runs.iter())
                .map(|r| r.len())
                .sum(),
            compactions: self.compactions,
        }
    }

    /// Capacity of level `i` in records.
    fn capacity(&self, level: usize) -> usize {
        self.config
            .memtable_records
            .saturating_mul(self.config.size_ratio.pow(level as u32 + 1))
    }

    fn ensure_level(&mut self, i: usize) {
        while self.levels.len() <= i {
            self.levels.push(Vec::new());
        }
    }

    /// Whether every level strictly below `level` is empty.
    fn is_bottom(&self, level: usize) -> bool {
        self.levels
            .iter()
            .skip(level + 1)
            .all(|runs| runs.is_empty())
    }

    /// Merge record streams ordered **oldest → newest**, newest version
    /// winning; optionally drop tombstones (safe only at the bottom).
    fn merge_streams(inputs: Vec<Vec<Record>>, drop_tombstones: bool) -> Vec<Record> {
        let mut map = std::collections::BTreeMap::new();
        for stream in inputs {
            for r in stream {
                map.insert(r.key, r.value);
            }
        }
        map.into_iter()
            .filter(|&(_, v)| !(drop_tombstones && v == TOMBSTONE))
            .map(|(k, v)| Record::new(k, v))
            .collect()
    }

    fn place_run(&mut self, level: usize, records: Vec<Record>) -> Result<()> {
        self.ensure_level(level);
        if records.is_empty() {
            return Ok(());
        }
        let run = SortedRun::build(&mut self.pager, &records, self.config.bloom_bits_per_key)?;
        self.levels[level].push(run);
        Ok(())
    }

    /// Restore level-size invariants after new data arrived at `from`.
    fn compact_from(&mut self, from: usize) -> Result<()> {
        let mut level = from;
        loop {
            self.ensure_level(level);
            let trigger = match self.config.policy {
                CompactionPolicy::Levelling => {
                    let entries: usize = self.levels[level].iter().map(|r| r.len()).sum();
                    entries > self.capacity(level)
                }
                CompactionPolicy::Tiering => self.levels[level].len() >= self.config.size_ratio,
            };
            if !trigger {
                return Ok(());
            }
            let traced = self.sink.enabled();
            let before = traced.then(|| self.tracker.snapshot());
            // Merge everything at `level` plus (for levelling) the run
            // already at level+1, and place the result at level+1.
            self.ensure_level(level + 1);
            let mut inputs: Vec<Vec<Record>> = Vec::new();
            let mut to_destroy = Vec::new();
            if self.config.policy == CompactionPolicy::Levelling {
                for run in std::mem::take(&mut self.levels[level + 1]) {
                    inputs.push(run.scan_all(&mut self.pager)?);
                    to_destroy.push(run);
                }
            }
            // Oldest first within the level.
            for run in std::mem::take(&mut self.levels[level]) {
                inputs.push(run.scan_all(&mut self.pager)?);
                to_destroy.push(run);
            }
            // Tombstones may be dropped only when every older version is
            // part of this merge: nothing deeper than level+1, and (for
            // tiering, which does not consume level+1's runs) level+1
            // itself must be empty.
            let drop_tomb = match self.config.policy {
                CompactionPolicy::Levelling => self.is_bottom(level + 1),
                CompactionPolicy::Tiering => {
                    self.levels[level + 1].is_empty() && self.is_bottom(level + 1)
                }
            };
            let records_in: usize = inputs.iter().map(Vec::len).sum();
            let merged = Self::merge_streams(inputs, drop_tomb);
            let records_out = merged.len();
            for run in to_destroy {
                run.destroy(&mut self.pager)?;
            }
            self.place_run(level + 1, merged)?;
            self.compactions += 1;
            if let Some(before) = before {
                let d = self.tracker.since(&before);
                self.sink.emit(
                    EventKind::LsmCompaction,
                    &[
                        ("level", level as u64),
                        ("to_level", level as u64 + 1),
                        ("records_in", records_in as u64),
                        ("records_out", records_out as u64),
                        ("read_bytes", d.total_read_bytes()),
                        ("bytes", d.total_write_bytes()),
                    ],
                );
            }
            level += 1;
        }
    }
}

impl Default for LsmTree {
    fn default() -> Self {
        Self::new()
    }
}

impl AccessMethod for LsmTree {
    fn name(&self) -> String {
        match self.config.policy {
            CompactionPolicy::Levelling => "lsm-tree".into(),
            CompactionPolicy::Tiering => "lsm-tree-tiered".into(),
        }
    }

    fn len(&self) -> usize {
        self.live.len()
    }

    fn tracker(&self) -> &Arc<CostTracker> {
        &self.tracker
    }

    fn space_profile(&self) -> SpaceProfile {
        let aux: u64 = self
            .levels
            .iter()
            .flat_map(|runs| runs.iter())
            .map(|r| r.aux_bytes())
            .sum();
        let physical = self.pager.physical_bytes() + aux + self.memtable.size_bytes();
        SpaceProfile::from_physical(self.live.len(), physical)
    }

    fn get_impl(&mut self, key: Key) -> Result<Option<Value>> {
        if let Some(v) = self.memtable.get(key, &self.tracker) {
            return Ok(if v == TOMBSTONE { None } else { Some(v) });
        }
        // Top level first; within a level, newest run first.
        let (levels, pager) = (&self.levels, &mut self.pager);
        for level in levels {
            for run in level.iter().rev() {
                if let Some(v) = run.get(pager, key)? {
                    return Ok(if v == TOMBSTONE { None } else { Some(v) });
                }
            }
        }
        Ok(None)
    }

    fn range_impl(&mut self, lo: Key, hi: Key) -> Result<Vec<Record>> {
        if lo > hi {
            return Err(RumError::InvalidArgument(format!(
                "inverted range {lo}..{hi}"
            )));
        }
        // Oldest sources first so newer versions overwrite.
        let mut inputs: Vec<Vec<Record>> = Vec::new();
        let (levels, pager) = (&self.levels, &mut self.pager);
        for level in levels.iter().rev() {
            for run in level.iter() {
                inputs.push(run.range(pager, lo, hi)?);
            }
        }
        inputs.push(self.memtable.range(lo, hi, &self.tracker));
        Ok(Self::merge_streams(inputs, true))
    }

    fn insert_impl(&mut self, key: Key, value: Value) -> Result<()> {
        if value == TOMBSTONE {
            return Err(RumError::InvalidArgument(
                "value u64::MAX is reserved as the tombstone sentinel".into(),
            ));
        }
        self.memtable.put(key, value, &self.tracker);
        self.live.insert(key);
        if self.memtable.len() >= self.config.memtable_records {
            self.flush()?;
        }
        Ok(())
    }

    fn update_impl(&mut self, key: Key, value: Value) -> Result<bool> {
        if value == TOMBSTONE {
            return Err(RumError::InvalidArgument(
                "value u64::MAX is reserved as the tombstone sentinel".into(),
            ));
        }
        if !self.live.contains(&key) {
            return Ok(false);
        }
        self.memtable.put(key, value, &self.tracker);
        if self.memtable.len() >= self.config.memtable_records {
            self.flush()?;
        }
        Ok(true)
    }

    fn delete_impl(&mut self, key: Key) -> Result<bool> {
        if !self.live.remove(&key) {
            return Ok(false);
        }
        self.memtable.put(key, TOMBSTONE, &self.tracker);
        if self.memtable.len() >= self.config.memtable_records {
            self.flush()?;
        }
        Ok(true)
    }

    fn bulk_load_impl(&mut self, records: &[Record]) -> Result<()> {
        check_bulk_input(records)?;
        if records.iter().any(|r| r.value == TOMBSTONE) {
            return Err(RumError::InvalidArgument(
                "value u64::MAX is reserved as the tombstone sentinel".into(),
            ));
        }
        // Tear down.
        self.memtable = Memtable::new();
        for runs in std::mem::take(&mut self.levels) {
            for run in runs {
                run.destroy(&mut self.pager)?;
            }
        }
        self.live = records.iter().map(|r| r.key).collect();
        // One run at the shallowest level that fits it.
        let mut level = 0;
        while self.capacity(level) < records.len() {
            level += 1;
        }
        self.place_run(level, records.to_vec())
    }

    /// Flush the memtable and run compactions to restore invariants.
    fn flush(&mut self) -> Result<()> {
        if self.memtable.is_empty() {
            return Ok(());
        }
        let traced = self.sink.enabled();
        let before = traced.then(|| self.tracker.snapshot());
        let fresh = self.memtable.drain_sorted();
        let records_in = fresh.len();
        let records_out;
        match self.config.policy {
            CompactionPolicy::Levelling => {
                // Merge with the existing level-0 run eagerly.
                self.ensure_level(0);
                let old: Vec<SortedRun> = std::mem::take(&mut self.levels[0]);
                let mut inputs = Vec::new();
                let mut doomed = Vec::new();
                for run in old {
                    inputs.push(run.scan_all(&mut self.pager)?);
                    doomed.push(run);
                }
                inputs.push(fresh);
                let drop_tomb = self.is_bottom(0);
                let merged = Self::merge_streams(inputs, drop_tomb);
                records_out = merged.len();
                for run in doomed {
                    run.destroy(&mut self.pager)?;
                }
                self.place_run(0, merged)?;
            }
            CompactionPolicy::Tiering => {
                records_out = fresh.len();
                self.place_run(0, fresh)?;
            }
        }
        if let Some(before) = before {
            // Bytes of the flush itself; the compactions it triggers below
            // report their own traffic in their own events.
            let d = self.tracker.since(&before);
            self.sink.emit(
                EventKind::LsmFlush,
                &[
                    ("level", 0),
                    ("records_in", records_in as u64),
                    ("records_out", records_out as u64),
                    ("read_bytes", d.total_read_bytes()),
                    ("bytes", d.total_write_bytes()),
                ],
            );
        }
        self.compact_from(0)
    }

    /// Keep the sink for flush/compaction events. The tree only observes
    /// the tracker through it, so installing a sink never changes a
    /// counted byte.
    fn set_trace_sink(&mut self, sink: Arc<dyn TraceSink>) {
        self.sink = sink;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rum_core::RECORDS_PER_PAGE;

    fn small_config(policy: CompactionPolicy) -> LsmConfig {
        LsmConfig {
            memtable_records: 64,
            size_ratio: 3,
            policy,
            bloom_bits_per_key: 10.0,
        }
    }

    #[test]
    fn crud_roundtrip_levelling() {
        let mut t = LsmTree::with_config(small_config(CompactionPolicy::Levelling));
        for k in 0..500u64 {
            t.insert(k, k * 2).unwrap();
        }
        assert_eq!(t.len(), 500);
        assert_eq!(t.get(123).unwrap(), Some(246));
        assert_eq!(t.get(999).unwrap(), None);
        assert!(t.update(123, 1).unwrap());
        assert!(!t.update(9999, 0).unwrap());
        assert_eq!(t.get(123).unwrap(), Some(1));
        assert!(t.delete(123).unwrap());
        assert!(!t.delete(123).unwrap());
        assert_eq!(t.get(123).unwrap(), None);
        assert_eq!(t.len(), 499);
    }

    #[test]
    fn crud_roundtrip_tiering() {
        let mut t = LsmTree::with_config(small_config(CompactionPolicy::Tiering));
        for k in 0..500u64 {
            t.insert(k, k * 2).unwrap();
        }
        assert_eq!(t.get(321).unwrap(), Some(642));
        assert!(t.delete(321).unwrap());
        assert_eq!(t.get(321).unwrap(), None);
        // Deleted key stays deleted across flushes and compactions.
        for k in 1000..2000u64 {
            t.insert(k, 0).unwrap();
        }
        assert_eq!(t.get(321).unwrap(), None);
    }

    #[test]
    fn newest_version_wins_across_levels() {
        let mut t = LsmTree::with_config(small_config(CompactionPolicy::Tiering));
        t.insert(7, 1).unwrap();
        // Push key 7's first version deep by inserting lots of other keys.
        for k in 100..800u64 {
            t.insert(k, 0).unwrap();
        }
        t.insert(7, 2).unwrap();
        for k in 800..1000u64 {
            t.insert(k, 0).unwrap();
        }
        assert_eq!(t.get(7).unwrap(), Some(2));
        let rs = t.range(7, 7).unwrap();
        assert_eq!(rs, vec![Record::new(7, 2)]);
    }

    #[test]
    fn levels_respect_size_ratio() {
        let mut t = LsmTree::with_config(small_config(CompactionPolicy::Levelling));
        for k in 0..5000u64 {
            t.insert(k, k).unwrap();
        }
        let stats = t.stats();
        assert!(stats.levels.len() >= 2);
        for (runs, _) in &stats.levels {
            assert!(*runs <= 1, "levelling keeps one run per level");
        }
        // Levels grow roughly by T.
        let sizes: Vec<usize> = stats.levels.iter().map(|&(_, n)| n).collect();
        for w in sizes.windows(2) {
            if w[0] > 0 && w[1] > 0 {
                assert!(w[1] >= w[0], "deeper levels are larger: {sizes:?}");
            }
        }
    }

    #[test]
    fn tiering_has_fewer_compactions_than_levelling() {
        let run = |policy| {
            let mut t = LsmTree::with_config(small_config(policy));
            for k in 0..20_000u64 {
                t.insert(k, k).unwrap();
            }
            (
                t.stats().compactions,
                t.tracker().snapshot().total_write_bytes(),
            )
        };
        let (lc, lw) = run(CompactionPolicy::Levelling);
        let (tc, tw) = run(CompactionPolicy::Tiering);
        let _ = (lc, tc);
        assert!(
            tw < lw,
            "tiering must write less than levelling: {tw} vs {lw}"
        );
    }

    #[test]
    fn insert_write_amplification_is_low() {
        // The headline LSM property: amortized insert cost ≪ B-tree's
        // page-per-insert.
        let mut t = LsmTree::with_config(LsmConfig {
            memtable_records: 1024,
            size_ratio: 4,
            policy: CompactionPolicy::Levelling,
            bloom_bits_per_key: 10.0,
        });
        for k in 0..50_000u64 {
            t.insert(k, k).unwrap();
        }
        let s = t.tracker().snapshot();
        let uo = s.write_amplification();
        // Levelling UO ≈ T × levels; with T=4 and ~3-4 levels that is ~16,
        // far below the B-tree's B = 256.
        assert!(uo < 64.0, "write amplification {uo} unexpectedly high");
        assert!(uo > 1.0);
    }

    #[test]
    fn point_reads_probe_runs_not_levels_of_pages() {
        let mut t = LsmTree::with_config(LsmConfig {
            memtable_records: 1024,
            size_ratio: 4,
            policy: CompactionPolicy::Levelling,
            bloom_bits_per_key: 10.0,
        });
        for k in 0..50_000u64 {
            t.insert(k, k).unwrap();
        }
        let before = t.tracker().snapshot();
        for k in (0..50_000u64).step_by(991) {
            assert_eq!(t.get(k).unwrap(), Some(k));
        }
        let probes = 50_000 / 991 + 1;
        let d = t.tracker().since(&before);
        let per_op = d.page_reads as f64 / probes as f64;
        // With blooms, most hits read ~1 page (the one run that has it).
        assert!(per_op < 4.0, "pages per point read: {per_op}");
    }

    #[test]
    fn blooms_cut_miss_cost() {
        let build = |bits: f64| {
            let mut t = LsmTree::with_config(LsmConfig {
                memtable_records: 512,
                size_ratio: 3,
                policy: CompactionPolicy::Tiering,
                bloom_bits_per_key: bits,
            });
            for k in 0..20_000u64 {
                t.insert(k * 2, k).unwrap();
            }
            let before = t.tracker().snapshot();
            for k in 0..2000u64 {
                t.get(2 * k + 1).unwrap(); // in-domain misses
            }
            t.tracker().since(&before).page_reads
        };
        let with_bloom = build(10.0);
        let without = build(0.0);
        assert!(
            with_bloom * 5 < without,
            "blooms should cut miss reads: {with_bloom} vs {without}"
        );
    }

    #[test]
    fn range_spans_levels() {
        let mut t = LsmTree::with_config(small_config(CompactionPolicy::Tiering));
        for k in (0..3000u64).rev() {
            t.insert(k, k + 1).unwrap();
        }
        t.update(1500, 99).unwrap();
        t.delete(1501).unwrap();
        let rs = t.range(1498, 1503).unwrap();
        assert_eq!(
            rs,
            vec![
                Record::new(1498, 1499),
                Record::new(1499, 1500),
                Record::new(1500, 99),
                Record::new(1502, 1503),
                Record::new(1503, 1504),
            ]
        );
    }

    #[test]
    fn bulk_load_builds_single_run() {
        let recs: Vec<Record> = (0..10_000u64).map(|k| Record::new(k, k)).collect();
        let mut t = LsmTree::new();
        t.bulk_load(&recs).unwrap();
        let stats = t.stats();
        let total_runs: usize = stats.levels.iter().map(|&(r, _)| r).sum();
        assert_eq!(total_runs, 1);
        assert_eq!(t.len(), 10_000);
        assert_eq!(t.get(5000).unwrap(), Some(5000));
    }

    #[test]
    fn tombstones_disappear_at_the_bottom() {
        let mut t = LsmTree::with_config(small_config(CompactionPolicy::Levelling));
        for k in 0..1000u64 {
            t.insert(k, k).unwrap();
        }
        for k in 0..1000u64 {
            t.delete(k).unwrap();
        }
        // Force everything through the hierarchy.
        AccessMethod::flush(&mut t).unwrap();
        let stats = t.stats();
        assert_eq!(t.len(), 0);
        // After full merges the bottom run should hold nothing (or nearly
        // nothing if intermediate levels still shelter tombstones).
        assert!(
            stats.total_entries <= 1000,
            "tombstone GC failed: {} entries",
            stats.total_entries
        );
        assert_eq!(t.range(0, u64::MAX).unwrap(), vec![]);
    }

    #[test]
    fn space_amplification_bounded_by_ratio() {
        let mut t = LsmTree::with_config(LsmConfig {
            memtable_records: 512,
            size_ratio: 4,
            policy: CompactionPolicy::Levelling,
            bloom_bits_per_key: 10.0,
        });
        for k in 0..40_000u64 {
            t.insert(k, k).unwrap();
        }
        // Overwrite everything once to create shadowed versions.
        for k in 0..40_000u64 {
            t.update(k, k + 1).unwrap();
        }
        let mo = t.space_profile().space_amplification();
        assert!(mo < 3.0, "levelled MO should stay near T/(T-1): {mo}");
    }

    #[test]
    fn model_check_random_ops() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        for policy in [CompactionPolicy::Levelling, CompactionPolicy::Tiering] {
            let mut rng = StdRng::seed_from_u64(71);
            let mut t = LsmTree::with_config(small_config(policy));
            let mut model = std::collections::BTreeMap::new();
            for step in 0..4000u64 {
                let k = rng.gen_range(0..1200u64);
                match rng.gen_range(0..6) {
                    0 | 1 => {
                        t.insert(k, step).unwrap();
                        model.insert(k, step);
                    }
                    2 => {
                        assert_eq!(t.update(k, step).unwrap(), model.contains_key(&k));
                        model.entry(k).and_modify(|v| *v = step);
                    }
                    3 => {
                        assert_eq!(t.delete(k).unwrap(), model.remove(&k).is_some());
                    }
                    4 => {
                        assert_eq!(t.get(k).unwrap(), model.get(&k).copied(), "step {step}");
                    }
                    _ => {
                        let hi = k + rng.gen_range(0..50u64);
                        let got = t.range(k, hi).unwrap();
                        let expect: Vec<Record> = model
                            .range(k..=hi)
                            .map(|(&k, &v)| Record::new(k, v))
                            .collect();
                        assert_eq!(got, expect, "range {k}..{hi} at step {step}");
                    }
                }
                assert_eq!(t.len(), model.len());
            }
        }
    }

    #[test]
    fn rejects_tombstone_value() {
        let mut t = LsmTree::new();
        assert!(t.insert(1, TOMBSTONE).is_err());
    }

    #[test]
    fn larger_ratio_means_fewer_levels() {
        let depth = |ratio: usize| {
            let mut t = LsmTree::with_config(LsmConfig {
                memtable_records: 256,
                size_ratio: ratio,
                policy: CompactionPolicy::Levelling,
                bloom_bits_per_key: 10.0,
            });
            for k in 0..40_000u64 {
                t.insert(k, k).unwrap();
            }
            // Depth = deepest level holding data (transiently empty upper
            // levels don't count against the hierarchy's depth).
            t.stats()
                .levels
                .iter()
                .rposition(|&(_, n)| n > 0)
                .map(|i| i + 1)
                .unwrap_or(0)
        };
        let deep = depth(2);
        let shallow = depth(10);
        assert!(shallow < deep, "T=10 ({shallow}) vs T=2 ({deep})");
        let _ = RECORDS_PER_PAGE;
    }
}
