//! # rum-lsm
//!
//! A log-structured merge tree (O'Neil et al.) — the canonical
//! *write-optimized differential structure* of the paper's Figure 1 left
//! corner and the "Levelled LSM" row of Table 1:
//!
//! * insert `O(T/B · log_T(N/B))` amortized (merges are batched),
//! * point query `O(log_T(N/B))` run probes, cut down by per-run Bloom
//!   filters ("iterative logs enhanced by probabilistic data structures"),
//! * range query `O(log_T(N/B) + m/B · T/(T−1))`,
//! * space `O(N · T/(T−1))` (levelled) — redundant versions across levels
//!   are the MO it pays.
//!
//! Both **levelling** (one run per level, lower RO/MO, higher UO) and
//! **tiering** (up to `T` runs per level, lower UO, higher RO/MO) are
//! implemented, plus the §5 roadmap's *dynamic* knob: "by changing the
//! number of merge trees dynamically, the depth of the merge hierarchy and
//! the frequency of merging, we can build access methods that dynamically
//! adapt to workload and hardware changes" — see [`tuning`].
//!
//! Range reads can additionally be accelerated by a REMIX-style cross-run
//! sorted [`view`]: one binary search plus a forward walk replaces the
//! probe-every-run merge, trading MO (the view's anchors) and UO (lazy
//! rebuilds after the run set changes) for RO.

pub mod memtable;
pub mod run;
pub mod tree;
pub mod tuning;
pub mod view;

pub use memtable::Memtable;
pub use run::{FilterKind, SortedRun};
pub use tree::{CompactionPolicy, LsmConfig, LsmStats, LsmTree};
pub use tuning::{advise, retune, TuningGoal};
pub use view::SortedView;

/// A crash-consistent LSM tree: every mutation is write-ahead logged
/// through [`rum_storage::Durable`], so the reported UO includes the
/// durability protocol and [`recover`](rum_storage::Durable::recover)
/// rebuilds the tree after a simulated power loss.
pub fn durable_lsm(config: LsmConfig) -> rum_storage::Durable<LsmTree> {
    rum_storage::Durable::new(move || LsmTree::with_config(config))
}

/// [`durable_lsm`] with a [`FaultInjector`](rum_storage::FaultInjector)
/// armed on the WAL sync path (crash-matrix cells).
pub fn durable_lsm_with_injector(
    config: LsmConfig,
    injector: std::sync::Arc<rum_storage::FaultInjector>,
) -> rum_storage::Durable<LsmTree> {
    rum_storage::Durable::with_injector(move || LsmTree::with_config(config), injector)
}

/// Value sentinel marking a tombstone (consistent with
/// `rum_columns::AppendLog`). User values must avoid it.
pub const TOMBSTONE: rum_core::Value = rum_core::Value::MAX;
