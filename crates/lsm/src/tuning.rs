//! Dynamic RUM balance for the LSM-tree — §5 of the paper:
//!
//! "We envision access methods that can automatically and dynamically
//! adapt to new workload requirements or hardware changes ... in the case
//! of access methods based on iterative merges, by changing the number of
//! merge trees dynamically, the depth of the merge hierarchy and the
//! frequency of merging, we can build access methods that dynamically
//! adapt to workload and hardware changes."
//!
//! [`advise`] maps an observed operation mix to an [`LsmConfig`];
//! [`retune`] applies a new configuration to a live tree, performing a
//! major compaction so the new shape takes effect immediately.

use rum_core::workload::OpMix;
use rum_core::{AccessMethod, Record, Result};

use crate::tree::{CompactionPolicy, LsmConfig, LsmTree};

/// What the tuner should favor when the mix is ambiguous.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TuningGoal {
    /// Minimize read overhead.
    Reads,
    /// Minimize write amplification.
    Writes,
    /// Minimize space amplification.
    Space,
    /// Balance all three.
    Balanced,
}

/// Recommend a configuration for an operation mix.
///
/// Rules follow Table 1's cost model: levelling with a large size ratio
/// collapses the hierarchy (reads and space improve, merges cost more);
/// tiering with a small ratio defers merges (writes improve, reads and
/// space suffer); Bloom bits buy read performance with auxiliary space.
pub fn advise(mix: &OpMix, goal: TuningGoal) -> LsmConfig {
    let total = (mix.get + mix.insert + mix.update + mix.delete + mix.range).max(f64::EPSILON);
    let read_frac = (mix.get + mix.range) / total;
    let write_frac = 1.0 - read_frac;

    let mut cfg = LsmConfig::default();
    match goal {
        TuningGoal::Reads => {
            cfg.policy = CompactionPolicy::Levelling;
            cfg.size_ratio = 10;
            cfg.bloom_bits_per_key = 14.0;
        }
        TuningGoal::Writes => {
            cfg.policy = CompactionPolicy::Tiering;
            cfg.size_ratio = 4;
            cfg.bloom_bits_per_key = 6.0;
        }
        TuningGoal::Space => {
            cfg.policy = CompactionPolicy::Levelling;
            cfg.size_ratio = 8;
            cfg.bloom_bits_per_key = 4.0;
        }
        TuningGoal::Balanced => {
            if read_frac > 0.7 {
                cfg.policy = CompactionPolicy::Levelling;
                cfg.size_ratio = 8;
                cfg.bloom_bits_per_key = 12.0;
            } else if write_frac > 0.7 {
                cfg.policy = CompactionPolicy::Tiering;
                cfg.size_ratio = 4;
                cfg.bloom_bits_per_key = 8.0;
            } else {
                cfg.policy = CompactionPolicy::Levelling;
                cfg.size_ratio = 4;
                cfg.bloom_bits_per_key = 10.0;
            }
        }
    }
    // A range-dominated mix amortizes the sorted view's rebuild cost over
    // many cheap walks: buy RO with MO/UO (unless space is the goal).
    if mix.range / total >= 0.5 && goal != TuningGoal::Space {
        cfg.sorted_view = true;
    }
    cfg
}

/// Apply `config` to a live tree: its contents are drained and rebuilt
/// under the new shape (a major compaction). Costs are charged to the
/// tree's tracker like any other reorganization.
pub fn retune(tree: &mut LsmTree, config: LsmConfig) -> Result<()> {
    // Drain the current contents through the public API.
    tree.flush()?;
    let all: Vec<Record> = tree.range_impl(0, u64::MAX)?;
    let mut rebuilt = LsmTree::with_config(config);
    // Keep the original tracker so callers' accounting stays continuous
    // (the major compaction's cost lands on it like any reorganization).
    rebuilt.adopt_tracker(std::sync::Arc::clone(tree.tracker()));
    rebuilt.bulk_load_impl(&all)?;
    *tree = rebuilt;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_heavy_mix_gets_levelling_with_big_ratio() {
        let cfg = advise(&OpMix::READ_HEAVY, TuningGoal::Balanced);
        assert_eq!(cfg.policy, CompactionPolicy::Levelling);
        assert!(cfg.size_ratio >= 8);
        assert!(cfg.bloom_bits_per_key >= 10.0);
    }

    #[test]
    fn write_heavy_mix_gets_tiering() {
        let cfg = advise(&OpMix::WRITE_HEAVY, TuningGoal::Balanced);
        assert_eq!(cfg.policy, CompactionPolicy::Tiering);
    }

    #[test]
    fn range_heavy_mix_gets_sorted_view() {
        let cfg = advise(&OpMix::RANGE_HEAVY, TuningGoal::Balanced);
        assert!(cfg.sorted_view, "range-heavy should enable the view");
        assert!(advise(&OpMix::SCAN_HEAVY, TuningGoal::Reads).sorted_view);
        // Space goal keeps the MO spend off the table.
        assert!(!advise(&OpMix::RANGE_HEAVY, TuningGoal::Space).sorted_view);
        // Point-read mixes don't pay for a structure they rarely use.
        assert!(!advise(&OpMix::READ_HEAVY, TuningGoal::Balanced).sorted_view);
    }

    #[test]
    fn explicit_goals_override() {
        let cfg = advise(&OpMix::WRITE_HEAVY, TuningGoal::Reads);
        assert_eq!(cfg.policy, CompactionPolicy::Levelling);
        let cfg = advise(&OpMix::READ_HEAVY, TuningGoal::Writes);
        assert_eq!(cfg.policy, CompactionPolicy::Tiering);
    }

    #[test]
    fn retune_preserves_contents() {
        let mut t = LsmTree::with_config(LsmConfig {
            memtable_records: 64,
            size_ratio: 2,
            policy: CompactionPolicy::Tiering,
            bloom_bits_per_key: 0.0,
            ..Default::default()
        });
        for k in 0..2000u64 {
            t.insert(k, k + 7).unwrap();
        }
        t.delete(100).unwrap();
        retune(
            &mut t,
            LsmConfig {
                memtable_records: 256,
                size_ratio: 8,
                policy: CompactionPolicy::Levelling,
                bloom_bits_per_key: 12.0,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(t.config().size_ratio, 8);
        assert_eq!(t.len(), 1999);
        assert_eq!(t.get(500).unwrap(), Some(507));
        assert_eq!(t.get(100).unwrap(), None);
    }

    #[test]
    fn retune_changes_read_cost_shape() {
        // Tiered with many runs → retune to levelled → fewer probes.
        let mut t = LsmTree::with_config(LsmConfig {
            memtable_records: 128,
            size_ratio: 8,
            policy: CompactionPolicy::Tiering,
            bloom_bits_per_key: 0.0,
            ..Default::default()
        });
        // Scatter keys so every flushed run spans the whole key domain —
        // otherwise fence pointers prune disjoint runs and tiering's extra
        // probes never materialize.
        for k in 0..10_000u64 {
            let key = (k.wrapping_mul(7919)) % 10_000;
            t.insert(key * 2, k).unwrap();
        }
        let miss_cost = |t: &mut LsmTree| {
            let before = t.tracker().snapshot();
            for k in 0..500u64 {
                t.get(2 * k + 1).unwrap();
            }
            t.tracker().since(&before).page_reads
        };
        let tiered_cost = miss_cost(&mut t);
        retune(
            &mut t,
            LsmConfig {
                memtable_records: 128,
                size_ratio: 8,
                policy: CompactionPolicy::Levelling,
                bloom_bits_per_key: 0.0,
                ..Default::default()
            },
        )
        .unwrap();
        let levelled_cost = miss_cost(&mut t);
        assert!(
            levelled_cost < tiered_cost,
            "levelled misses ({levelled_cost}) should beat tiered ({tiered_cost})"
        );
    }
}
