//! Dynamic RUM balance for the LSM-tree — §5 of the paper:
//!
//! "We envision access methods that can automatically and dynamically
//! adapt to new workload requirements or hardware changes ... in the case
//! of access methods based on iterative merges, by changing the number of
//! merge trees dynamically, the depth of the merge hierarchy and the
//! frequency of merging, we can build access methods that dynamically
//! adapt to workload and hardware changes."
//!
//! [`advise`] maps an observed operation mix to an [`LsmConfig`];
//! [`retune`] applies a new configuration to a live tree, performing a
//! major compaction so the new shape takes effect immediately.

use std::collections::HashMap;
use std::sync::Arc;

use rum_core::autotune::{MigrationReceipt, Morphable, RetuneEstimate};
use rum_core::trace::TraceSink;
use rum_core::tracker::CostTracker;
use rum_core::wizard::{Environment, Family};
use rum_core::workload::OpMix;
use rum_core::{
    AccessMethod, Key, Record, Result, SpaceProfile, Value, RECORDS_PER_PAGE, RECORD_SIZE,
};

use crate::tree::{CompactionPolicy, LsmConfig, LsmTree};

/// What the tuner should favor when the mix is ambiguous.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum TuningGoal {
    /// Minimize read overhead.
    Reads,
    /// Minimize write amplification.
    Writes,
    /// Minimize space amplification.
    Space,
    /// Balance all three.
    #[default]
    Balanced,
}

/// Recommend a configuration for an operation mix.
///
/// Rules follow Table 1's cost model: levelling with a large size ratio
/// collapses the hierarchy (reads and space improve, merges cost more);
/// tiering with a small ratio defers merges (writes improve, reads and
/// space suffer); Bloom bits buy read performance with auxiliary space.
pub fn advise(mix: &OpMix, goal: TuningGoal) -> LsmConfig {
    let total = (mix.get + mix.insert + mix.update + mix.delete + mix.range).max(f64::EPSILON);
    let read_frac = (mix.get + mix.range) / total;
    let write_frac = 1.0 - read_frac;

    let mut cfg = LsmConfig::default();
    match goal {
        TuningGoal::Reads => {
            cfg.policy = CompactionPolicy::Levelling;
            cfg.size_ratio = 10;
            cfg.bloom_bits_per_key = 14.0;
        }
        TuningGoal::Writes => {
            cfg.policy = CompactionPolicy::Tiering;
            cfg.size_ratio = 4;
            cfg.bloom_bits_per_key = 6.0;
        }
        TuningGoal::Space => {
            cfg.policy = CompactionPolicy::Levelling;
            cfg.size_ratio = 8;
            cfg.bloom_bits_per_key = 4.0;
        }
        TuningGoal::Balanced => {
            if read_frac > 0.7 {
                cfg.policy = CompactionPolicy::Levelling;
                cfg.size_ratio = 8;
                cfg.bloom_bits_per_key = 12.0;
            } else if write_frac > 0.7 {
                cfg.policy = CompactionPolicy::Tiering;
                cfg.size_ratio = 4;
                cfg.bloom_bits_per_key = 8.0;
            } else {
                // Mixed mixes are still read-majority in physical I/O:
                // every read must probe, while writes amortize across
                // merges. Keep the read-leaning ratio (fewer runs to
                // probe and scan) and spend a mid-size filter budget.
                cfg.policy = CompactionPolicy::Levelling;
                cfg.size_ratio = 8;
                cfg.bloom_bits_per_key = 10.0;
            }
        }
    }
    // A range-dominated mix amortizes the sorted view's rebuild cost over
    // many cheap walks: buy RO with MO/UO (unless space is the goal).
    if mix.range / total >= 0.5 && goal != TuningGoal::Space {
        cfg.sorted_view = true;
    }
    cfg
}

/// Apply `config` to a live tree: its contents are drained and rebuilt
/// under the new shape (a major compaction). Costs are charged to the
/// tree's tracker like any other reorganization.
pub fn retune(tree: &mut LsmTree, config: LsmConfig) -> Result<()> {
    // Drain the current contents through the public API.
    tree.flush()?;
    let all: Vec<Record> = tree.range_impl(0, u64::MAX)?;
    let mut rebuilt = LsmTree::with_config(config);
    // Keep the original tracker so callers' accounting stays continuous
    // (the major compaction's cost lands on it like any reorganization).
    rebuilt.adopt_tracker(std::sync::Arc::clone(tree.tracker()));
    rebuilt.bulk_load_impl(&all)?;
    *tree = rebuilt;
    Ok(())
}

/// Expected pages per operation for `cfg` under `mix` — the Table 1 cost
/// model specialized to the LSM knobs, used to decide whether a re-tune
/// pays for itself. Deterministic and cheap: no tree is touched.
///
/// Shapes mirror the paper: levelling keeps one run per level (reads and
/// space improve, each record is rewritten ~`T/2` times per level);
/// tiering keeps up to `T` runs per level (writes improve, point reads
/// probe more runs); Bloom bits suppress the per-run probes; a sorted
/// view collapses range queries to one seek at an extra rebuild cost.
pub fn expected_cost(cfg: &LsmConfig, mix: &OpMix, n: usize, m: usize) -> f64 {
    let b = RECORDS_PER_PAGE as f64;
    let t = cfg.size_ratio.max(2) as f64;
    let fill = (n.max(1) as f64 / cfg.memtable_records.max(16) as f64).max(2.0);
    let levels = fill.log(t).ceil().max(1.0);
    let runs = levels
        * match cfg.policy {
            CompactionPolicy::Levelling => 1.0,
            CompactionPolicy::Tiering => (t + 1.0) / 2.0,
        };
    // False-positive rate per filtered run; bits == 0 disables the filter
    // (fp = 1). The same per-key budget drives either filter kind.
    let fp = 0.6185f64.powf(cfg.bloom_bits_per_key.max(0.0));
    let point = 1.0 + (runs - 1.0).max(0.0) * fp * 0.5;
    let scan_pages = m as f64 / b;
    // Without the view a range probes every run — but fence pointers
    // prune runs whose key span misses the window, so on average only
    // about half the extra runs cost a page. Pricing the full `runs`
    // overstates what a view (or a shape with fewer runs) can save.
    let range = if cfg.sorted_view {
        1.0 + scan_pages
    } else {
        1.0 + (runs - 1.0).max(0.0) * 0.5 + scan_pages
    };
    // Amortized merge traffic per ingested record, in pages.
    let write = match cfg.policy {
        CompactionPolicy::Levelling => levels * (t / 2.0) / b,
        CompactionPolicy::Tiering => levels / b,
    } + 1.0 / b;
    // Updates and deletes are blind writes in an LSM (the live-set check
    // is in-memory): they cost the same amortized merge traffic as
    // inserts, with no read-before-write.
    let total = (mix.get + mix.insert + mix.update + mix.delete + mix.range).max(f64::EPSILON);
    let mut cost =
        (mix.get * point + mix.range * range + (mix.insert + mix.update + mix.delete) * write)
            / total;
    if cfg.sorted_view {
        // The view is stranded by every flush and lazily rebuilt over the
        // *whole* tree by the next view-enabled range query: one rebuild
        // scans every run (`n/b` pages) and writes an anchor per live key
        // (~1.5x the data again), and at most one happens per flush
        // (every `memtable_records` ingested records) and per range
        // query, whichever is rarer. This is the UO the view spends to
        // buy its RO — underpricing it makes a mixed read/write mix look
        // like it wants a view it would thrash.
        let write_frac = (mix.insert + mix.update + mix.delete) / total;
        let range_frac = mix.range / total;
        let rebuilds_per_op = (write_frac / cfg.memtable_records.max(16) as f64).min(range_frac);
        cost += rebuilds_per_op * 2.5 * (n.max(1) as f64 / b);
    }
    cost
}

/// Memoized [`advise`]: mixes are quantized to 1/64 buckets per
/// dimension so nearby mixes share one cache entry, and the rule table
/// runs at most once per (bucket, goal).
#[derive(Clone, Debug, Default)]
pub struct AdviceMemo {
    cache: HashMap<([u16; 5], TuningGoal), LsmConfig>,
    computes: u64,
}

impl AdviceMemo {
    const BUCKETS: f64 = 64.0;

    fn bucket(mix: &OpMix) -> [u16; 5] {
        let m = rum_core::advisor::normalize_mix(mix);
        [m.get, m.insert, m.update, m.delete, m.range]
            .map(|f| (f * Self::BUCKETS).floor().min(Self::BUCKETS - 1.0) as u16)
    }

    /// Advice for `mix`, computed at the bucket centroid and cached.
    pub fn advise(&mut self, mix: &OpMix, goal: TuningGoal) -> LsmConfig {
        let key = (Self::bucket(mix), goal);
        if let Some(cfg) = self.cache.get(&key) {
            return *cfg;
        }
        self.computes += 1;
        let [g, i, u, d, r] = key.0.map(|b| (f64::from(b) + 0.5) / Self::BUCKETS);
        let centroid = OpMix {
            get: g,
            insert: i,
            update: u,
            delete: d,
            range: r,
        };
        let cfg = advise(&centroid, goal);
        self.cache.insert(key, cfg);
        cfg
    }

    /// How many times the rule table actually ran (cache misses).
    pub fn computes(&self) -> u64 {
        self.computes
    }
}

/// One-line shape description for receipts and trace events.
pub fn describe(cfg: &LsmConfig) -> String {
    format!(
        "lsm({:?},T={},mem={},bloom={},view={})",
        cfg.policy, cfg.size_ratio, cfg.memtable_records, cfg.bloom_bits_per_key, cfg.sorted_view
    )
}

/// [`retune`], priced: returns a [`MigrationReceipt`] charging the drain
/// and rebuild I/O (it lands on the tree's tracker like any
/// reorganization, so the runner's phase accounting books it as UO) and
/// the transient double-residency (old shape + drain buffer) as MO.
pub fn retune_priced(tree: &mut LsmTree, config: LsmConfig) -> Result<MigrationReceipt> {
    let from = describe(tree.config());
    let old_resident = tree.space_profile().total_bytes();
    let before = tree.tracker().snapshot();
    tree.flush()?;
    let all: Vec<Record> = tree.range_impl(0, u64::MAX)?;
    let buffer_bytes = (all.len() * RECORD_SIZE) as u64;
    let mut rebuilt = LsmTree::with_config(config);
    rebuilt.adopt_tracker(Arc::clone(tree.tracker()));
    rebuilt.bulk_load_impl(&all)?;
    *tree = rebuilt;
    let delta = tree.tracker().since(&before);
    Ok(MigrationReceipt {
        from,
        to: describe(tree.config()),
        bytes_read: delta.total_read_bytes(),
        bytes_written: delta.total_write_bytes(),
        peak_extra_bytes: old_resident + buffer_bytes,
    })
}

/// Toggle only the sorted view, priced: the one re-tune that needs no
/// drain. Turning the view on builds it eagerly (the build's scan and
/// anchors land on the tracker as aux writes, so the runner books them
/// as UO); turning it off drops the anchors for free and releases their
/// MO. The receipt's transient residency is the anchors themselves.
pub fn toggle_view_priced(tree: &mut LsmTree, on: bool) -> Result<MigrationReceipt> {
    let from = describe(tree.config());
    let before = tree.tracker().snapshot();
    tree.set_sorted_view(on)?;
    let delta = tree.tracker().since(&before);
    Ok(MigrationReceipt {
        from,
        to: describe(tree.config()),
        bytes_read: delta.total_read_bytes(),
        bytes_written: delta.total_write_bytes(),
        peak_extra_bytes: tree.view_bytes(),
    })
}

/// An [`LsmTree`] that knows how to reshape itself: the [`Morphable`]
/// face the [`AutoTuner`](rum_core::autotune::AutoTuner) drives. Knob
/// advice is memoized per mix bucket so steady workloads never re-run
/// the rule table.
pub struct SelfTuningLsm {
    tree: LsmTree,
    advice: AdviceMemo,
    goal: TuningGoal,
}

impl SelfTuningLsm {
    /// Wrap a live tree with [`TuningGoal::Balanced`] advice.
    pub fn new(tree: LsmTree) -> Self {
        SelfTuningLsm {
            tree,
            advice: AdviceMemo::default(),
            goal: TuningGoal::Balanced,
        }
    }

    /// Wrap with an explicit goal.
    pub fn with_goal(tree: LsmTree, goal: TuningGoal) -> Self {
        SelfTuningLsm {
            tree,
            advice: AdviceMemo::default(),
            goal,
        }
    }

    /// The wrapped tree.
    pub fn tree(&self) -> &LsmTree {
        &self.tree
    }

    /// The advice cache (for inspecting memoization behavior).
    pub fn advice(&self) -> &AdviceMemo {
        &self.advice
    }

    /// The advised shape for `mix`, keeping the live memtable size:
    /// `advise` tunes policy/ratio/filter/view, not the write buffer, so
    /// a tree with a non-default memtable must not look perpetually
    /// "mis-shaped" (that would make every drift flag a migration).
    ///
    /// The rule table's crude `range/total >= 0.5` view threshold is then
    /// refined with the cost model at the *live* size: the view pays
    /// exactly when its range savings beat its rebuild thrash, which
    /// depends on how much data a rebuild rescans — something a
    /// size-blind rule cannot weigh. (`m` cancels between the two arms,
    /// so any value prices the comparison.)
    fn advised_for(&mut self, mix: &OpMix) -> LsmConfig {
        let mut cfg = LsmConfig {
            memtable_records: self.tree.config().memtable_records,
            ..self.advice.advise(mix, self.goal)
        };
        if self.goal != TuningGoal::Space {
            let n = self.tree.len().max(1);
            let with = LsmConfig {
                sorted_view: true,
                ..cfg
            };
            let without = LsmConfig {
                sorted_view: false,
                ..cfg
            };
            cfg.sorted_view =
                expected_cost(&with, mix, n, 16) < expected_cost(&without, mix, n, 16);
        }
        cfg
    }

    /// The migration bill for moving to `advised`, in pages — `Some` only
    /// when a cheap path exists (a view-only toggle skips the drain: on
    /// costs one whole-tree scan plus the anchors, off is a free drop).
    fn cheap_bill(&self, advised: &LsmConfig) -> Option<f64> {
        let current = self.tree.config();
        let view_only = LsmConfig {
            sorted_view: current.sorted_view,
            ..*advised
        } == *current;
        if !view_only {
            return None;
        }
        Some(if advised.sorted_view {
            2.5 * self.tree.len() as f64 / RECORDS_PER_PAGE as f64
        } else {
            0.0
        })
    }
}

impl AccessMethod for SelfTuningLsm {
    fn name(&self) -> String {
        self.tree.name()
    }

    fn len(&self) -> usize {
        self.tree.len()
    }

    fn tracker(&self) -> &Arc<CostTracker> {
        self.tree.tracker()
    }

    fn space_profile(&self) -> SpaceProfile {
        self.tree.space_profile()
    }

    fn get_impl(&mut self, key: Key) -> Result<Option<Value>> {
        self.tree.get_impl(key)
    }

    fn range_impl(&mut self, lo: Key, hi: Key) -> Result<Vec<Record>> {
        self.tree.range_impl(lo, hi)
    }

    fn insert_impl(&mut self, key: Key, value: Value) -> Result<()> {
        self.tree.insert_impl(key, value)
    }

    fn update_impl(&mut self, key: Key, value: Value) -> Result<bool> {
        self.tree.update_impl(key, value)
    }

    fn delete_impl(&mut self, key: Key) -> Result<bool> {
        self.tree.delete_impl(key)
    }

    fn bulk_load_impl(&mut self, records: &[Record]) -> Result<()> {
        self.tree.bulk_load_impl(records)
    }

    fn flush(&mut self) -> Result<()> {
        self.tree.flush()
    }

    fn set_trace_sink(&mut self, sink: Arc<dyn TraceSink>) {
        self.tree.set_trace_sink(sink);
    }

    fn try_heal(&mut self) -> Result<bool> {
        self.tree.try_heal()
    }
}

impl Morphable for SelfTuningLsm {
    fn family(&self) -> Family {
        Family::LsmTree
    }

    fn shape(&self) -> String {
        describe(self.tree.config())
    }

    fn retune_gain(&mut self, mix: &OpMix, env: &Environment) -> Option<RetuneEstimate> {
        let advised = self.advised_for(mix);
        if advised == *self.tree.config() {
            return None;
        }
        let current_cost = expected_cost(self.tree.config(), mix, env.n, env.m);
        let advised_cost = expected_cost(&advised, mix, env.n, env.m);
        if advised_cost >= current_cost {
            return None;
        }
        Some(RetuneEstimate {
            current_cost,
            advised_cost,
            advised_shape: describe(&advised),
            bill_pages: self.cheap_bill(&advised),
        })
    }

    fn morph_to(&mut self, family: Family, mix: &OpMix) -> Result<Option<MigrationReceipt>> {
        if family != Family::LsmTree {
            return Ok(None);
        }
        let advised = self.advised_for(mix);
        if advised == *self.tree.config() {
            return Ok(None);
        }
        if self.cheap_bill(&advised).is_some() {
            return toggle_view_priced(&mut self.tree, advised.sorted_view).map(Some);
        }
        retune_priced(&mut self.tree, advised).map(Some)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_heavy_mix_gets_levelling_with_big_ratio() {
        let cfg = advise(&OpMix::READ_HEAVY, TuningGoal::Balanced);
        assert_eq!(cfg.policy, CompactionPolicy::Levelling);
        assert!(cfg.size_ratio >= 8);
        assert!(cfg.bloom_bits_per_key >= 10.0);
    }

    #[test]
    fn write_heavy_mix_gets_tiering() {
        let cfg = advise(&OpMix::WRITE_HEAVY, TuningGoal::Balanced);
        assert_eq!(cfg.policy, CompactionPolicy::Tiering);
    }

    #[test]
    fn range_heavy_mix_gets_sorted_view() {
        let cfg = advise(&OpMix::RANGE_HEAVY, TuningGoal::Balanced);
        assert!(cfg.sorted_view, "range-heavy should enable the view");
        assert!(advise(&OpMix::SCAN_HEAVY, TuningGoal::Reads).sorted_view);
        // Space goal keeps the MO spend off the table.
        assert!(!advise(&OpMix::RANGE_HEAVY, TuningGoal::Space).sorted_view);
        // Point-read mixes don't pay for a structure they rarely use.
        assert!(!advise(&OpMix::READ_HEAVY, TuningGoal::Balanced).sorted_view);
    }

    #[test]
    fn explicit_goals_override() {
        let cfg = advise(&OpMix::WRITE_HEAVY, TuningGoal::Reads);
        assert_eq!(cfg.policy, CompactionPolicy::Levelling);
        let cfg = advise(&OpMix::READ_HEAVY, TuningGoal::Writes);
        assert_eq!(cfg.policy, CompactionPolicy::Tiering);
    }

    #[test]
    fn retune_preserves_contents() {
        let mut t = LsmTree::with_config(LsmConfig {
            memtable_records: 64,
            size_ratio: 2,
            policy: CompactionPolicy::Tiering,
            bloom_bits_per_key: 0.0,
            ..Default::default()
        });
        for k in 0..2000u64 {
            t.insert(k, k + 7).unwrap();
        }
        t.delete(100).unwrap();
        retune(
            &mut t,
            LsmConfig {
                memtable_records: 256,
                size_ratio: 8,
                policy: CompactionPolicy::Levelling,
                bloom_bits_per_key: 12.0,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(t.config().size_ratio, 8);
        assert_eq!(t.len(), 1999);
        assert_eq!(t.get(500).unwrap(), Some(507));
        assert_eq!(t.get(100).unwrap(), None);
    }

    #[test]
    fn retune_changes_read_cost_shape() {
        // Tiered with many runs → retune to levelled → fewer probes.
        let mut t = LsmTree::with_config(LsmConfig {
            memtable_records: 128,
            size_ratio: 8,
            policy: CompactionPolicy::Tiering,
            bloom_bits_per_key: 0.0,
            ..Default::default()
        });
        // Scatter keys so every flushed run spans the whole key domain —
        // otherwise fence pointers prune disjoint runs and tiering's extra
        // probes never materialize.
        for k in 0..10_000u64 {
            let key = (k.wrapping_mul(7919)) % 10_000;
            t.insert(key * 2, k).unwrap();
        }
        let miss_cost = |t: &mut LsmTree| {
            let before = t.tracker().snapshot();
            for k in 0..500u64 {
                t.get(2 * k + 1).unwrap();
            }
            t.tracker().since(&before).page_reads
        };
        let tiered_cost = miss_cost(&mut t);
        retune(
            &mut t,
            LsmConfig {
                memtable_records: 128,
                size_ratio: 8,
                policy: CompactionPolicy::Levelling,
                bloom_bits_per_key: 0.0,
                ..Default::default()
            },
        )
        .unwrap();
        let levelled_cost = miss_cost(&mut t);
        assert!(
            levelled_cost < tiered_cost,
            "levelled misses ({levelled_cost}) should beat tiered ({tiered_cost})"
        );
    }

    #[test]
    fn expected_cost_orders_advised_shapes_correctly() {
        let (n, m) = (1 << 20, 256);
        let read_cfg = advise(&OpMix::READ_HEAVY, TuningGoal::Balanced);
        let write_cfg = advise(&OpMix::WRITE_HEAVY, TuningGoal::Balanced);
        let scan_cfg = advise(&OpMix::SCAN_HEAVY, TuningGoal::Balanced);
        // Each advised shape should win (or tie) its own mix against the
        // shapes advised for the opposite mixes.
        let at = |cfg: &LsmConfig, mix: &OpMix| expected_cost(cfg, mix, n, m);
        assert!(at(&write_cfg, &OpMix::WRITE_HEAVY) < at(&read_cfg, &OpMix::WRITE_HEAVY));
        assert!(at(&write_cfg, &OpMix::WRITE_HEAVY) < at(&scan_cfg, &OpMix::WRITE_HEAVY));
        assert!(at(&read_cfg, &OpMix::READ_HEAVY) < at(&write_cfg, &OpMix::READ_HEAVY));
        assert!(at(&scan_cfg, &OpMix::SCAN_HEAVY) < at(&write_cfg, &OpMix::SCAN_HEAVY));
        assert!(at(&scan_cfg, &OpMix::SCAN_HEAVY) < at(&read_cfg, &OpMix::SCAN_HEAVY));
    }

    #[test]
    fn advice_memo_runs_the_rule_table_once_per_bucket() {
        let mut memo = AdviceMemo::default();
        let a = memo.advise(&OpMix::READ_HEAVY, TuningGoal::Balanced);
        let b = memo.advise(&OpMix::READ_HEAVY, TuningGoal::Balanced);
        assert_eq!(a, b);
        assert_eq!(memo.computes(), 1, "repeat query must hit the cache");
        // A tiny jitter stays in the same 1/64 bucket.
        let mut jitter = OpMix::READ_HEAVY;
        jitter.get += 0.003;
        memo.advise(&jitter, TuningGoal::Balanced);
        assert_eq!(memo.computes(), 1, "same-bucket jitter must hit the cache");
        // A different mix or goal misses.
        memo.advise(&OpMix::WRITE_HEAVY, TuningGoal::Balanced);
        assert_eq!(memo.computes(), 2);
        memo.advise(&OpMix::READ_HEAVY, TuningGoal::Space);
        assert_eq!(memo.computes(), 3);
    }

    #[test]
    fn retune_priced_charges_the_migration_and_keeps_contents() {
        let mut t = LsmTree::with_config(LsmConfig {
            memtable_records: 64,
            size_ratio: 2,
            policy: CompactionPolicy::Tiering,
            ..Default::default()
        });
        for k in 0..3000u64 {
            t.insert(k, k + 1).unwrap();
        }
        let receipt = retune_priced(
            &mut t,
            LsmConfig {
                memtable_records: 256,
                size_ratio: 8,
                policy: CompactionPolicy::Levelling,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(receipt.bytes_read > 0, "drain must be priced");
        assert!(receipt.bytes_written > 0, "rebuild must be priced");
        assert!(
            receipt.peak_extra_bytes as usize >= 3000 * rum_core::RECORD_SIZE,
            "double residency must cover at least the drain buffer"
        );
        assert_ne!(receipt.from, receipt.to);
        assert_eq!(t.len(), 3000);
        assert_eq!(t.get(1234).unwrap(), Some(1235));
    }

    #[test]
    fn self_tuning_lsm_retunes_only_when_the_advice_changes() {
        let env = Environment {
            n: 4096,
            ..Default::default()
        };
        let balanced = advise(&OpMix::BALANCED, TuningGoal::Balanced);
        let mut m = SelfTuningLsm::new(LsmTree::with_config(balanced));
        for k in 0..4096u64 {
            m.insert(k, k).unwrap();
        }
        // Already shaped for the mix it was advised for: no gain, no work.
        assert!(m.retune_gain(&OpMix::BALANCED, &env).is_none());
        assert!(m
            .morph_to(Family::LsmTree, &OpMix::BALANCED)
            .unwrap()
            .is_none());
        // A write-heavy mix advises tiering: positive gain, priced morph.
        let est = m
            .retune_gain(&OpMix::WRITE_HEAVY, &env)
            .expect("mix flip should open a gain");
        assert!(est.advised_cost < est.current_cost);
        let receipt = m
            .morph_to(Family::LsmTree, &OpMix::WRITE_HEAVY)
            .unwrap()
            .expect("morph should happen");
        assert!(receipt.bytes_written > 0);
        assert_eq!(m.tree().config().policy, CompactionPolicy::Tiering);
        assert_eq!(m.len(), 4096);
        // Foreign families are declined without touching the tree.
        assert!(m
            .morph_to(Family::BTree, &OpMix::WRITE_HEAVY)
            .unwrap()
            .is_none());
    }
}
