//! REMIX-style cross-run sorted view.
//!
//! An LSM range query normally probes every run (fence search + boundary
//! pages) and k-way-merges the results. The sorted view trades memory for
//! those reads, exactly the RUM read/memory corner: a globally-sorted
//! array of `(key, run, page)` anchors, one per **live, newest** key
//! across all runs, resolved once at build time. A range query then does
//! a single binary search into the view and walks forward in key order,
//! fetching each referenced page at most once — shadowed versions,
//! tombstoned keys, and runs outside the range are never touched.
//!
//! The view is an auxiliary structure: its resident bytes are charged to
//! MO by [`LsmTree::space_profile`](crate::LsmTree), and the I/O of each
//! lazy (re)build is re-classed as auxiliary *write* traffic (UO) by the
//! tree, so the RO it buys on queries is paid for in the other two
//! corners rather than hidden.

use std::collections::{BTreeMap, HashMap};

use rum_core::{DataClass, Key, Record, Result};
use rum_storage::{BlockDevice, Pager};

use crate::run::SortedRun;
use crate::TOMBSTONE;

/// Bytes one anchor occupies: an 8-byte key plus two 4-byte indices.
const ENTRY_BYTES: u64 = 16;

/// One anchor: the newest live version of `key` lives in page `page` of
/// run `run` (both indices into the tree's oldest→newest run order).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ViewEntry {
    pub key: Key,
    pub run: u32,
    pub page: u32,
}

/// A globally-sorted view over a fixed set of runs. Valid only for the
/// exact run set it was built from; the tree drops it whenever a flush,
/// compaction, or bulk load changes the runs.
pub struct SortedView {
    /// Anchors sorted by key, tombstones and shadowed versions excluded.
    entries: Vec<ViewEntry>,
}

impl SortedView {
    /// Build the view by scanning `runs` (ordered **oldest → newest**)
    /// once. All read traffic lands on `pager`'s current tracker; the
    /// caller decides how to class it (the tree books it as UO).
    pub fn build<D: BlockDevice>(pager: &mut Pager<D>, runs: &[&SortedRun]) -> Result<SortedView> {
        // Newest version wins: later (newer) runs overwrite earlier ones.
        let mut newest: BTreeMap<Key, (u32, u32, u64)> = BTreeMap::new();
        for (run_idx, run) in runs.iter().enumerate() {
            for page_idx in 0..run.num_pages() {
                for rec in run.read_page(pager, page_idx)? {
                    newest.insert(rec.key, (run_idx as u32, page_idx as u32, rec.value));
                }
            }
        }
        Ok(SortedView {
            entries: newest
                .into_iter()
                .filter(|&(_, (_, _, v))| v != TOMBSTONE)
                .map(|(key, (run, page, _))| ViewEntry { key, run, page })
                .collect(),
        })
    }

    /// Anchors in the view.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Resident auxiliary bytes, charged to MO by the tree.
    pub fn size_bytes(&self) -> u64 {
        self.entries.len() as u64 * ENTRY_BYTES
    }

    /// Serve `[lo, hi]` from the view: one binary search, then a forward
    /// walk fetching each referenced `(run, page)` at most once. Returns
    /// the live on-disk records in the range, sorted by key — the exact
    /// run contents the probe-every-run path would produce after merging
    /// (memtable entries are the caller's to merge in).
    pub fn range<D: BlockDevice>(
        &self,
        pager: &mut Pager<D>,
        runs: &[&SortedRun],
        lo: Key,
        hi: Key,
    ) -> Result<Vec<Record>> {
        // The binary search touches log2(n) anchors of in-memory aux
        // metadata — same pricing as a run's fence search.
        let steps = (self.entries.len().max(2) as f64).log2().ceil() as u64;
        pager.tracker().read(DataClass::Aux, steps * 8);
        let start = self.entries.partition_point(|e| e.key < lo);
        let mut pages: HashMap<(u32, u32), Vec<Record>> = HashMap::new();
        let mut out = Vec::new();
        for e in &self.entries[start..] {
            if e.key > hi {
                break;
            }
            let recs = match pages.entry((e.run, e.page)) {
                std::collections::hash_map::Entry::Occupied(o) => o.into_mut(),
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert(runs[e.run as usize].read_page(pager, e.page as usize)?)
                }
            };
            let i = recs.partition_point(|r| r.key < e.key);
            debug_assert!(i < recs.len() && recs[i].key == e.key, "stale view anchor");
            out.push(recs[i]);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::FilterKind;
    use rum_core::CostTracker;
    use rum_storage::MemDevice;

    fn pager() -> Pager<MemDevice> {
        Pager::new(MemDevice::new(), CostTracker::new())
    }

    fn run_of(p: &mut Pager<MemDevice>, recs: &[Record]) -> SortedRun {
        SortedRun::build(p, recs, FilterKind::Bloom, 0.0).unwrap()
    }

    #[test]
    fn newest_version_wins_and_tombstones_drop() {
        let mut p = pager();
        let old = run_of(
            &mut p,
            &[
                Record::new(1, 10),
                Record::new(2, 20),
                Record::new(3, 30),
                Record::new(4, 40),
            ],
        );
        let new = run_of(&mut p, &[Record::new(2, 99), Record::new(3, TOMBSTONE)]);
        let runs = [&old, &new];
        let view = SortedView::build(&mut p, &runs).unwrap();
        assert_eq!(view.len(), 3); // 1, 2 (new), 4 — tombstoned 3 dropped
        let got = view.range(&mut p, &runs, 0, u64::MAX).unwrap();
        assert_eq!(
            got,
            vec![Record::new(1, 10), Record::new(2, 99), Record::new(4, 40)]
        );
    }

    #[test]
    fn range_reads_each_page_once() {
        let mut p = pager();
        let recs: Vec<Record> = (0..2000u64).map(|k| Record::new(k, k)).collect();
        let run = run_of(&mut p, &recs);
        let runs = [&run];
        let view = SortedView::build(&mut p, &runs).unwrap();
        let before = p.tracker().snapshot();
        let got = view.range(&mut p, &runs, 100, 400).unwrap();
        assert_eq!(got.len(), 301);
        let d = p.tracker().since(&before);
        // 301 keys spanning at most ceil(301/256)+1 = 3 pages.
        assert!(d.page_reads <= 3, "pages read: {}", d.page_reads);
    }

    #[test]
    fn empty_view_yields_empty_range() {
        let mut p = pager();
        let view = SortedView::build(&mut p, &[]).unwrap();
        assert!(view.is_empty());
        assert_eq!(view.size_bytes(), 0);
        assert_eq!(view.range(&mut p, &[], 0, u64::MAX).unwrap(), vec![]);
    }
}
