//! The in-memory write buffer (level 0 of the merge hierarchy).
//!
//! Inserts are absorbed here at byte granularity — this is where the LSM's
//! low write amplification comes from: a record costs 16 bytes now and its
//! share of page-granular merge traffic later.

use rum_core::{CostTracker, DataClass, Key, Record, Value, RECORD_SIZE};
use std::collections::BTreeMap;

/// Estimated in-memory bytes per entry (record + tree-node overhead).
pub const ENTRY_OVERHEAD_BYTES: u64 = 48;

/// A sorted write buffer; tombstones are records with the
/// [`TOMBSTONE`](crate::TOMBSTONE) value.
#[derive(Debug, Default)]
pub struct Memtable {
    entries: BTreeMap<Key, Value>,
}

impl Memtable {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// In-memory footprint.
    pub fn size_bytes(&self) -> u64 {
        self.entries.len() as u64 * ENTRY_OVERHEAD_BYTES
    }

    /// Upsert (tombstones included); charges one record of base write.
    pub fn put(&mut self, key: Key, value: Value, tracker: &CostTracker) {
        tracker.write(DataClass::Base, RECORD_SIZE as u64);
        self.entries.insert(key, value);
    }

    /// Probe; charges one record of base read on a hit.
    pub fn get(&self, key: Key, tracker: &CostTracker) -> Option<Value> {
        let r = self.entries.get(&key).copied();
        if r.is_some() {
            tracker.read(DataClass::Base, RECORD_SIZE as u64);
        }
        r
    }

    /// Entries in `[lo, hi]`, ascending; charges the bytes returned.
    pub fn range(&self, lo: Key, hi: Key, tracker: &CostTracker) -> Vec<Record> {
        let out: Vec<Record> = self
            .entries
            .range(lo..=hi)
            .map(|(&k, &v)| Record::new(k, v))
            .collect();
        tracker.read(DataClass::Base, (out.len() * RECORD_SIZE) as u64);
        out
    }

    /// Drain all entries in key order (for a flush).
    pub fn drain_sorted(&mut self) -> Vec<Record> {
        let out = self
            .entries
            .iter()
            .map(|(&k, &v)| Record::new(k, v))
            .collect();
        self.entries.clear();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_overwrite() {
        let t = CostTracker::new();
        let mut m = Memtable::new();
        m.put(1, 10, &t);
        m.put(1, 11, &t);
        assert_eq!(m.get(1, &t), Some(11));
        assert_eq!(m.get(2, &t), None);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn drain_is_sorted_and_empties() {
        let t = CostTracker::new();
        let mut m = Memtable::new();
        for k in [5u64, 1, 3] {
            m.put(k, k, &t);
        }
        let drained = m.drain_sorted();
        let keys: Vec<u64> = drained.iter().map(|r| r.key).collect();
        assert_eq!(keys, vec![1, 3, 5]);
        assert!(m.is_empty());
    }

    #[test]
    fn range_inclusive() {
        let t = CostTracker::new();
        let mut m = Memtable::new();
        for k in 0..10u64 {
            m.put(k, k, &t);
        }
        let rs = m.range(3, 6, &t);
        assert_eq!(rs.len(), 4);
    }

    #[test]
    fn writes_charge_byte_granular() {
        let t = CostTracker::new();
        let mut m = Memtable::new();
        for k in 0..100u64 {
            m.put(k, k, &t);
        }
        assert_eq!(t.snapshot().base_write_bytes, 1600);
    }
}
