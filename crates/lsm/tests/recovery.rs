//! Crash/recovery tests for the WAL-wrapped LSM tree: every crash point
//! must recover exactly the committed prefix, bit-identically.

use rum_core::{AccessMethod, Key, Record, RumError};
use rum_lsm::{durable_lsm, durable_lsm_with_injector, LsmConfig, LsmTree};
use rum_storage::{FaultInjector, FaultPlan};

fn small() -> LsmConfig {
    LsmConfig {
        memtable_records: 16,
        ..Default::default()
    }
}

fn scan<M: AccessMethod>(m: &mut M) -> Vec<Record> {
    m.range(0, Key::MAX).unwrap()
}

#[test]
fn durable_lsm_recovers_losslessly() {
    let mut d = durable_lsm(small());
    let initial: Vec<Record> = (0..100u64).map(|k| Record::new(k * 2, k)).collect();
    d.bulk_load(&initial).unwrap();
    for k in 0..40u64 {
        d.insert(k * 2 + 1, k).unwrap();
    }
    d.delete(10).unwrap();
    d.update(12, 999).unwrap();
    let before = scan(&mut d);
    let report = d.recover().unwrap();
    assert!(report.complete && !report.torn_tail);
    assert_eq!(scan(&mut d), before);
    // The memtable contents survived via the WAL, not via flush.
    assert_eq!(before.len(), 139);
}

#[test]
fn durable_lsm_charges_wal_traffic_as_aux_writes() {
    let mut bare = LsmTree::with_config(small());
    let mut wal = durable_lsm(small());
    for k in 0..200u64 {
        bare.insert(k, k).unwrap();
        wal.insert(k, k).unwrap();
    }
    let extra = wal.tracker().snapshot().total_write_bytes() as i64
        - bare.tracker().snapshot().total_write_bytes() as i64;
    assert_eq!(
        extra,
        wal.logging_bytes() as i64,
        "UO delta must be exactly the logging traffic"
    );
    assert!(extra > 0);
}

#[test]
fn seeded_crashes_recover_the_committed_prefix() {
    // Reference run: learn the WAL footprint of the op stream.
    let mut reference = durable_lsm(small());
    let ops: Vec<(u64, u64)> = (0..120u64).map(|k| (k * 3 % 251, k)).collect();
    for &(k, v) in &ops {
        reference.insert(k, v).unwrap();
    }
    let total = reference.wal().synced_total();
    for seed in 0..12u64 {
        let torn = seed % 2 == 0;
        let plan = FaultPlan::seeded_crash(seed, total, torn);
        let mut d = durable_lsm_with_injector(small(), FaultInjector::new(plan));
        let mut committed = Vec::new();
        for &(k, v) in &ops {
            match d.insert(k, v) {
                Ok(()) => committed.push((k, v)),
                Err(RumError::Crash(_)) => break,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert!(committed.len() < ops.len(), "seed {seed} never crashed");
        let report = d.recover().unwrap();
        assert_eq!(report.committed_ops, committed.len(), "seed {seed}");
        // The recovered tree must equal a fresh tree fed the committed
        // prefix — bit-identical range results.
        let mut model = LsmTree::with_config(small());
        for &(k, v) in &committed {
            model.insert(k, v).unwrap();
        }
        assert_eq!(scan(&mut d), scan(&mut model), "seed {seed} torn {torn}");
    }
}
