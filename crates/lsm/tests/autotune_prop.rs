//! Property tests for the AutoTuner's hysteresis on a live LSM-tree:
//! a constant mix must never trigger a migration (the drift gate holds),
//! and a hard mix flip must trigger exactly one (the tuner reacts, then
//! the adopted estimate keeps it quiet).

use proptest::prelude::*;
use rum_core::advisor::ProfileStore;
use rum_core::autotune::{AutoTuneConfig, AutoTuneSummary, AutoTuner};
use rum_core::runner::run_stream_autotuned;
use rum_core::trace::{noop_sink, TraceCollector};
use rum_core::wizard::{Constraints, Environment};
use rum_core::workload::{Drift, OpMix, OpStream, WorkloadSpec};
use rum_lsm::tuning::{advise, SelfTuningLsm, TuningGoal};
use rum_lsm::{LsmConfig, LsmTree};

const N: usize = 4096;
const OPS: usize = 8192;
const WINDOW: usize = 256;

/// The canonical mixes whose advised LSM shapes are pairwise distinct —
/// a flip between any two of them gives the tuner a real gain to chase.
const MIXES: [(&str, OpMix); 3] = [
    ("read-heavy", OpMix::READ_HEAVY),
    ("write-heavy", OpMix::WRITE_HEAVY),
    ("scan-heavy", OpMix::SCAN_HEAVY),
];

/// Same reactive shape the drift bench uses: a drift segment is only a
/// handful of trajectory windows at this scale, so the estimate must
/// settle (and the tuner fire) a few windows after a flip.
fn reactive() -> AutoTuneConfig {
    AutoTuneConfig {
        decay: 0.35,
        settle_epsilon: 0.12,
        settle_windows: 1,
        cooldown_windows: 3,
        warmup_windows: 2,
        ..Default::default()
    }
}

/// Run one tuned stream: tree starts at the advised shape for `start`,
/// the workload runs `mix` under `drift`.
fn run_tuned(start: &OpMix, mix: OpMix, drift: Drift, seed: u64) -> AutoTuneSummary {
    let spec = WorkloadSpec {
        initial_records: N,
        operations: OPS,
        mix,
        range_len: 16,
        seed,
        drift,
        ..Default::default()
    };
    // The advised shape for `start`, with a memtable small enough that
    // the tree actually builds levels at this scale (advice preserves
    // the live memtable size, so this never reads as "mis-shaped").
    let config = LsmConfig {
        memtable_records: 256,
        ..advise(start, TuningGoal::Balanced)
    };
    let mut method = SelfTuningLsm::new(LsmTree::with_config(config));
    let mut tuner = AutoTuner::new(
        reactive(),
        start,
        ProfileStore::default(),
        Environment {
            n: N,
            m: 16,
            ..Default::default()
        },
        Constraints {
            needs_ranges: true,
            ..Default::default()
        },
    );
    let mut trace = TraceCollector::new(WINDOW, noop_sink());
    let (_, summary) =
        run_stream_autotuned(&mut method, OpStream::new(&spec), &mut tuner, &mut trace)
            .expect("tuned stream");
    summary
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Hysteresis, quiet side: when the workload never drifts and the
    /// tree already has the advised shape for its mix, the tuner must
    /// not migrate — window-to-window sampling noise alone is below the
    /// drift gate, and even a spurious drift flag finds no better shape.
    #[test]
    fn constant_mix_never_migrates(which in 0usize..MIXES.len(), seed in any::<u64>()) {
        let (name, mix) = MIXES[which];
        let summary = run_tuned(&mix, mix, Drift::None, seed);
        prop_assert!(summary.windows > 0);
        prop_assert_eq!(
            summary.migrations, 0,
            "{name} (seed {seed}) migrated {} times on a constant mix",
            summary.migrations
        );
        prop_assert_eq!(summary.migration_read_bytes + summary.migration_write_bytes, 0);
    }

    /// Hysteresis, reactive side: one hard mix flip mid-stream must
    /// trigger exactly one priced migration — the tuner fires once the
    /// estimate settles on the new mix, adopts it, and stays quiet for
    /// the rest of the stream. The scan→read flip is deliberately
    /// excluded: its only shape delta is dropping the sorted view, which
    /// a range-free mix neither pays for nor suffers from (no rebuilds
    /// without range queries), so the predicted win is zero and the
    /// tuner correctly declines (the constant-mix property covers
    /// staying quiet). The read→scan flip is the cheap path the other
    /// way: a view-only toggle whose receipt prices the eager build.
    #[test]
    fn hard_mix_flip_triggers_exactly_one_migration(
        pair in 0usize..5,
        seed in any::<u64>(),
    ) {
        const PAIRS: [(usize, usize); 5] = [(0, 1), (1, 0), (0, 2), (1, 2), (2, 1)];
        let (from, to) = PAIRS[pair];
        let (from_name, start) = MIXES[from];
        let (to_name, target) = MIXES[to];
        let drift = Drift::Flip { at: OPS / 2, mix: target };
        let summary = run_tuned(&start, start, drift, seed);
        prop_assert_eq!(
            summary.migrations, 1,
            "{from_name}->{to_name} (seed {seed}): {} migrations, {} drift events, {} noop decisions",
            summary.migrations, summary.drift_events, summary.noop_decisions
        );
        let receipt = &summary.receipts[0];
        prop_assert!(receipt.bytes_read + receipt.bytes_written > 0, "migration was free");
        prop_assert!(summary.peak_extra_bytes > 0, "no double-residency charged");
    }
}
