//! Property-based differential tests for the LSM-tree under both
//! compaction policies and varied geometry.

use proptest::prelude::*;
use rum_core::{AccessMethod, Key, Record, RumError};
use rum_lsm::{durable_lsm_with_injector, CompactionPolicy, LsmConfig, LsmTree};
use rum_storage::{FaultInjector, FaultPlan};
use std::collections::BTreeMap;

#[derive(Clone, Debug)]
enum LsmOp {
    Insert(u16, u32),
    Update(u16, u32),
    Delete(u16),
    Get(u16),
    Range(u16, u8),
    Flush,
}

fn op_strategy() -> impl Strategy<Value = LsmOp> {
    prop_oneof![
        4 => (any::<u16>(), any::<u32>()).prop_map(|(k, v)| LsmOp::Insert(k, v)),
        2 => (any::<u16>(), any::<u32>()).prop_map(|(k, v)| LsmOp::Update(k, v)),
        2 => any::<u16>().prop_map(LsmOp::Delete),
        2 => any::<u16>().prop_map(LsmOp::Get),
        1 => (any::<u16>(), any::<u8>()).prop_map(|(lo, s)| LsmOp::Range(lo, s)),
        1 => Just(LsmOp::Flush),
    ]
}

fn run(config: LsmConfig, ops: &[LsmOp]) {
    let mut t = LsmTree::with_config(config);
    let mut model: BTreeMap<u64, u64> = BTreeMap::new();
    for op in ops {
        match *op {
            LsmOp::Insert(k, v) => {
                t.insert(k as u64, v as u64).unwrap();
                model.insert(k as u64, v as u64);
            }
            LsmOp::Update(k, v) => {
                assert_eq!(
                    t.update(k as u64, v as u64).unwrap(),
                    model.contains_key(&(k as u64))
                );
                model.entry(k as u64).and_modify(|x| *x = v as u64);
            }
            LsmOp::Delete(k) => {
                assert_eq!(
                    t.delete(k as u64).unwrap(),
                    model.remove(&(k as u64)).is_some()
                );
            }
            LsmOp::Get(k) => {
                assert_eq!(t.get(k as u64).unwrap(), model.get(&(k as u64)).copied());
            }
            LsmOp::Range(lo, span) => {
                let (lo, hi) = (lo as u64, lo as u64 + span as u64);
                let got = t.range(lo, hi).unwrap();
                let expect: Vec<Record> = model
                    .range(lo..=hi)
                    .map(|(&k, &v)| Record::new(k, v))
                    .collect();
                assert_eq!(got, expect);
            }
            LsmOp::Flush => t.flush().unwrap(),
        }
        assert_eq!(t.len(), model.len());
    }
    let all = t.range(0, u64::MAX).unwrap();
    let expect: Vec<Record> = model.iter().map(|(&k, &v)| Record::new(k, v)).collect();
    assert_eq!(all, expect);
}

/// Apply `ops` to a view-enabled and a view-disabled tree in lockstep:
/// every operation's result — range results bit-for-bit included — must
/// be identical between the two configurations.
fn run_view_differential(config: LsmConfig, ops: &[LsmOp]) {
    let mut plain = LsmTree::with_config(config);
    let mut viewed = LsmTree::with_config(LsmConfig {
        sorted_view: true,
        ..config
    });
    for op in ops {
        match *op {
            LsmOp::Insert(k, v) => {
                plain.insert(k as u64, v as u64).unwrap();
                viewed.insert(k as u64, v as u64).unwrap();
            }
            LsmOp::Update(k, v) => {
                assert_eq!(
                    plain.update(k as u64, v as u64).unwrap(),
                    viewed.update(k as u64, v as u64).unwrap()
                );
            }
            LsmOp::Delete(k) => {
                assert_eq!(
                    plain.delete(k as u64).unwrap(),
                    viewed.delete(k as u64).unwrap()
                );
            }
            LsmOp::Get(k) => {
                assert_eq!(plain.get(k as u64).unwrap(), viewed.get(k as u64).unwrap());
            }
            LsmOp::Range(lo, span) => {
                let (lo, hi) = (lo as u64, lo as u64 + span as u64);
                assert_eq!(
                    plain.range(lo, hi).unwrap(),
                    viewed.range(lo, hi).unwrap(),
                    "range {lo}..{hi} diverged"
                );
            }
            LsmOp::Flush => {
                plain.flush().unwrap();
                viewed.flush().unwrap();
            }
        }
        assert_eq!(plain.len(), viewed.len());
    }
    assert_eq!(
        plain.range(0, u64::MAX).unwrap(),
        viewed.range(0, u64::MAX).unwrap()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn levelling_matches_model(ops in proptest::collection::vec(op_strategy(), 1..400)) {
        run(
            LsmConfig {
                memtable_records: 16,
                size_ratio: 2,
                policy: CompactionPolicy::Levelling,
                bloom_bits_per_key: 8.0,
                ..Default::default()
            },
            &ops,
        );
    }

    #[test]
    fn tiering_matches_model(ops in proptest::collection::vec(op_strategy(), 1..400)) {
        run(
            LsmConfig {
                memtable_records: 16,
                size_ratio: 3,
                policy: CompactionPolicy::Tiering,
                bloom_bits_per_key: 0.0,
                ..Default::default()
            },
            &ops,
        );
    }

    #[test]
    fn view_equals_no_view_levelling(ops in proptest::collection::vec(op_strategy(), 1..400)) {
        run_view_differential(
            LsmConfig {
                memtable_records: 16,
                size_ratio: 2,
                policy: CompactionPolicy::Levelling,
                bloom_bits_per_key: 8.0,
                ..Default::default()
            },
            &ops,
        );
    }

    #[test]
    fn view_equals_no_view_tiering(ops in proptest::collection::vec(op_strategy(), 1..400)) {
        run_view_differential(
            LsmConfig {
                memtable_records: 16,
                size_ratio: 3,
                policy: CompactionPolicy::Tiering,
                bloom_bits_per_key: 0.0,
                ..Default::default()
            },
            &ops,
        );
    }

    /// Crash at a random WAL offset mid-stream with the view enabled (and
    /// warm: range queries run before the crash). After recovery the tree
    /// must serve ranges bit-identical to a view-disabled tree fed the
    /// committed prefix — i.e. the view rebuilds cleanly from scratch.
    #[test]
    fn view_rebuilds_after_crash(seed in 0u64..64, torn in any::<bool>()) {
        let config = LsmConfig {
            memtable_records: 16,
            size_ratio: 2,
            sorted_view: true,
            ..Default::default()
        };
        let ops: Vec<(u64, u64)> = (0..150u64).map(|k| (k * 7 % 211, k)).collect();
        // Reference run to learn the stream's WAL footprint.
        let mut reference = rum_lsm::durable_lsm(config);
        for &(k, v) in &ops {
            reference.insert(k, v).unwrap();
            if k % 13 == 0 {
                reference.range(k, k + 20).unwrap(); // keep the view warm
            }
        }
        let total = reference.wal().synced_total();

        let plan = FaultPlan::seeded_crash(seed, total, torn);
        let mut d = durable_lsm_with_injector(config, FaultInjector::new(plan));
        let mut committed = Vec::new();
        for &(k, v) in &ops {
            if k % 13 == 0 && d.range(k, k + 20).is_err() {
                break;
            }
            match d.insert(k, v) {
                Ok(()) => committed.push((k, v)),
                Err(RumError::Crash(_)) => break,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        d.recover().unwrap();
        // Model: a plain (view-off) tree fed the committed prefix.
        let mut model = LsmTree::with_config(LsmConfig {
            sorted_view: false,
            ..config
        });
        for &(k, v) in &committed {
            model.insert(k, v).unwrap();
        }
        prop_assert_eq!(
            d.range(0, Key::MAX).unwrap(),
            model.range(0, Key::MAX).unwrap()
        );
        prop_assert_eq!(
            d.range(50, 120).unwrap(),
            model.range(50, 120).unwrap()
        );
    }
}
