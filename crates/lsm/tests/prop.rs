//! Property-based differential tests for the LSM-tree under both
//! compaction policies and varied geometry.

use proptest::prelude::*;
use rum_core::{AccessMethod, Record};
use rum_lsm::{CompactionPolicy, LsmConfig, LsmTree};
use std::collections::BTreeMap;

#[derive(Clone, Debug)]
enum LsmOp {
    Insert(u16, u32),
    Update(u16, u32),
    Delete(u16),
    Get(u16),
    Range(u16, u8),
    Flush,
}

fn op_strategy() -> impl Strategy<Value = LsmOp> {
    prop_oneof![
        4 => (any::<u16>(), any::<u32>()).prop_map(|(k, v)| LsmOp::Insert(k, v)),
        2 => (any::<u16>(), any::<u32>()).prop_map(|(k, v)| LsmOp::Update(k, v)),
        2 => any::<u16>().prop_map(LsmOp::Delete),
        2 => any::<u16>().prop_map(LsmOp::Get),
        1 => (any::<u16>(), any::<u8>()).prop_map(|(lo, s)| LsmOp::Range(lo, s)),
        1 => Just(LsmOp::Flush),
    ]
}

fn run(config: LsmConfig, ops: &[LsmOp]) {
    let mut t = LsmTree::with_config(config);
    let mut model: BTreeMap<u64, u64> = BTreeMap::new();
    for op in ops {
        match *op {
            LsmOp::Insert(k, v) => {
                t.insert(k as u64, v as u64).unwrap();
                model.insert(k as u64, v as u64);
            }
            LsmOp::Update(k, v) => {
                assert_eq!(
                    t.update(k as u64, v as u64).unwrap(),
                    model.contains_key(&(k as u64))
                );
                model.entry(k as u64).and_modify(|x| *x = v as u64);
            }
            LsmOp::Delete(k) => {
                assert_eq!(
                    t.delete(k as u64).unwrap(),
                    model.remove(&(k as u64)).is_some()
                );
            }
            LsmOp::Get(k) => {
                assert_eq!(t.get(k as u64).unwrap(), model.get(&(k as u64)).copied());
            }
            LsmOp::Range(lo, span) => {
                let (lo, hi) = (lo as u64, lo as u64 + span as u64);
                let got = t.range(lo, hi).unwrap();
                let expect: Vec<Record> = model
                    .range(lo..=hi)
                    .map(|(&k, &v)| Record::new(k, v))
                    .collect();
                assert_eq!(got, expect);
            }
            LsmOp::Flush => t.flush().unwrap(),
        }
        assert_eq!(t.len(), model.len());
    }
    let all = t.range(0, u64::MAX).unwrap();
    let expect: Vec<Record> = model.iter().map(|(&k, &v)| Record::new(k, v)).collect();
    assert_eq!(all, expect);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn levelling_matches_model(ops in proptest::collection::vec(op_strategy(), 1..400)) {
        run(
            LsmConfig {
                memtable_records: 16,
                size_ratio: 2,
                policy: CompactionPolicy::Levelling,
                bloom_bits_per_key: 8.0,
            },
            &ops,
        );
    }

    #[test]
    fn tiering_matches_model(ops in proptest::collection::vec(op_strategy(), 1..400)) {
        run(
            LsmConfig {
                memtable_records: 16,
                size_ratio: 3,
                policy: CompactionPolicy::Tiering,
                bloom_bits_per_key: 0.0,
            },
            &ops,
        );
    }
}
