//! BF-tree-style approximate indexing (Athanassoulis & Ailamaki, PVLDB
//! 2014) — the paper's §4 "approximate tree indexing" category and the §5
//! roadmap item "Approximate (tree) indexing that supports updates with
//! low read performance overhead, by absorbing them in updatable
//! probabilistic data structures (like quotient filters)."
//!
//! The base data is a sorted, paged column. Instead of a dense index, each
//! *zone* of pages carries a small **quotient filter** over its keys: a
//! point probe consults the zone filters (cheap, in-memory, approximate)
//! and reads pages only in zones whose filter answers "maybe". False
//! positives cost extra page reads — the filter size knob trades MO
//! directly against RO. Because the filters are quotient filters (not
//! Bloom), **deletes and inserts update them exactly**, which is what
//! keeps the approximate index usable under churn.

use std::sync::Arc;

use rum_columns::packed::PackedFile;
use rum_core::{
    check_bulk_input, AccessMethod, CostTracker, DataClass, Key, Record, Result, SpaceProfile,
    Value, RECORDS_PER_PAGE,
};
use rum_sketch::QuotientFilter;
use rum_storage::{MemDevice, Pager};

/// Configuration of the approximate index.
#[derive(Clone, Copy, Debug)]
pub struct BfTreeConfig {
    /// Records per filtered zone (page-aligned).
    pub zone_records: usize,
    /// Remainder bits per quotient-filter entry: the RO/MO knob
    /// (false-positive rate ≈ load · 2^-rbits).
    pub remainder_bits: u32,
}

impl Default for BfTreeConfig {
    fn default() -> Self {
        BfTreeConfig {
            zone_records: 4 * RECORDS_PER_PAGE,
            remainder_bits: 8,
        }
    }
}

/// A zone: its key fence (for routing) plus its filter.
struct Zone {
    /// Smallest key in the zone (zones are sorted, disjoint).
    min_key: Key,
    filter: QuotientFilter,
}

/// The approximate tree.
pub struct BfTree {
    /// Sorted base data.
    file: PackedFile,
    zones: Vec<Zone>,
    config: BfTreeConfig,
    pager: Pager<MemDevice>,
    tracker: Arc<CostTracker>,
}

impl BfTree {
    pub fn new() -> Self {
        Self::with_config(BfTreeConfig::default())
    }

    pub fn with_config(config: BfTreeConfig) -> Self {
        assert!(config.zone_records >= RECORDS_PER_PAGE);
        assert_eq!(config.zone_records % RECORDS_PER_PAGE, 0);
        let tracker = CostTracker::new();
        BfTree {
            file: PackedFile::new(),
            zones: Vec::new(),
            config,
            pager: Pager::new(MemDevice::new(), Arc::clone(&tracker)),
            tracker,
        }
    }

    pub fn zone_count(&self) -> usize {
        self.zones.len()
    }

    /// Total filter footprint (the approximate index's whole MO).
    pub fn filter_bytes(&self) -> u64 {
        self.zones.iter().map(|z| z.filter.size_bytes()).sum()
    }

    fn zone_records(&self) -> usize {
        self.config.zone_records
    }

    /// Zone index of record position `idx`.
    fn zone_of_pos(&self, idx: usize) -> usize {
        idx / self.zone_records()
    }

    /// Charge one filter probe (a handful of slots touched).
    fn charge_filter_probe(&self) {
        self.tracker.read(DataClass::Aux, 4);
    }

    /// Charge a filter update.
    fn charge_filter_write(&self) {
        self.tracker.write(DataClass::Aux, 4);
    }

    /// Binary search for `key` in the sorted file; `Ok(idx)` or
    /// `Err(insertion_idx)`. Charges the pages probed.
    fn search(&mut self, key: Key) -> Result<std::result::Result<usize, usize>> {
        let mut lo = 0usize;
        let mut hi = self.file.len();
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let rec = self.file.get(&mut self.pager, mid)?;
            match rec.key.cmp(&key) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return Ok(Ok(mid)),
            }
        }
        Ok(Err(lo))
    }

    /// Rebuild the zone directory from the current file contents.
    fn rebuild_zones(&mut self) -> Result<()> {
        let n = self.file.len();
        let zr = self.zone_records();
        let mut zones = Vec::with_capacity(n.div_ceil(zr));
        for zi in 0..n.div_ceil(zr) {
            let start = zi * zr;
            let end = ((zi + 1) * zr).min(n);
            let mut filter = QuotientFilter::with_capacity(zr.max(16), self.config.remainder_bits);
            let mut min_key = Key::MAX;
            for idx in start..end {
                let r = self.file.get(&mut self.pager, idx)?;
                filter.insert(r.key);
                min_key = min_key.min(r.key);
            }
            self.charge_filter_write();
            zones.push(Zone { min_key, filter });
        }
        self.zones = zones;
        Ok(())
    }
}

impl Default for BfTree {
    fn default() -> Self {
        Self::new()
    }
}

impl AccessMethod for BfTree {
    fn name(&self) -> String {
        "bf-tree".into()
    }

    fn len(&self) -> usize {
        self.file.len()
    }

    fn tracker(&self) -> &Arc<CostTracker> {
        &self.tracker
    }

    fn space_profile(&self) -> SpaceProfile {
        let physical = self.pager.physical_bytes()
            + self.file.directory_bytes()
            + self.filter_bytes()
            + self.zones.len() as u64 * 16;
        SpaceProfile::from_physical(self.file.len(), physical)
    }

    fn get_impl(&mut self, key: Key) -> Result<Option<Value>> {
        // Fences route the key to exactly one zone (zones partition the
        // sorted key space); the zone's filter then decides whether any
        // page is worth reading — the BF-tree probe path.
        if self.zones.is_empty() {
            return Ok(None);
        }
        // In-memory fence search (aux metadata).
        let steps = (self.zones.len().max(2) as f64).log2().ceil() as u64;
        self.tracker.read(DataClass::Aux, steps * 8);
        let zi = match self.zones.binary_search_by_key(&key, |z| z.min_key) {
            Ok(i) => i,
            Err(0) => return Ok(None), // below the first zone
            Err(i) => i - 1,
        };
        self.charge_filter_probe();
        if !self.zones[zi].filter.may_contain(key) {
            return Ok(None);
        }
        // "Maybe": binary search the zone's pages.
        let zr = self.zone_records();
        let start = zi * zr;
        let end = ((zi + 1) * zr).min(self.file.len());
        let mut lo = start;
        let mut hi = end;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let rec = self.file.get(&mut self.pager, mid)?;
            match rec.key.cmp(&key) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return Ok(Some(rec.value)),
            }
        }
        // A false positive: the filter said maybe, the zone said no.
        Ok(None)
    }

    fn range_impl(&mut self, lo: Key, hi: Key) -> Result<Vec<Record>> {
        // Ranges route by zone fences (filters answer point membership
        // only), then scan sequentially like a sorted column.
        let start = match self.search(lo)? {
            Ok(i) | Err(i) => i,
        };
        let mut out = Vec::new();
        let mut idx = start;
        while idx < self.file.len() {
            let page_idx = idx / RECORDS_PER_PAGE;
            let slot = idx % RECORDS_PER_PAGE;
            let recs = self.file.read_page(&mut self.pager, page_idx)?;
            let mut done = false;
            for r in &recs[slot..] {
                if r.key > hi {
                    done = true;
                    break;
                }
                out.push(*r);
            }
            if done {
                break;
            }
            idx = (page_idx + 1) * RECORDS_PER_PAGE;
        }
        Ok(out)
    }

    fn insert_impl(&mut self, key: Key, value: Value) -> Result<()> {
        match self.search(key)? {
            Ok(idx) => {
                // Value update: filters track keys only.
                self.file.set(&mut self.pager, idx, Record::new(key, value))
            }
            Err(idx) => {
                self.file
                    .insert_at(&mut self.pager, idx, Record::new(key, value))?;
                // The insert shifts records across zone boundaries: every
                // zone from the insertion point on changes membership. A
                // real BF-tree leaves slack per zone; we take the honest
                // (expensive) route and rebuild the affected filters —
                // this is the structure's write tax.
                let first_zone = self.zone_of_pos(idx);
                let n = self.file.len();
                let zr = self.zone_records();
                // Drop stale zones and rebuild from first_zone onward.
                self.zones.truncate(first_zone);
                for zi in first_zone..n.div_ceil(zr) {
                    let start = zi * zr;
                    let end = ((zi + 1) * zr).min(n);
                    let mut filter =
                        QuotientFilter::with_capacity(zr.max(16), self.config.remainder_bits);
                    let mut min_key = Key::MAX;
                    for i in start..end {
                        let r = self.file.get(&mut self.pager, i)?;
                        filter.insert(r.key);
                        min_key = min_key.min(r.key);
                    }
                    self.charge_filter_write();
                    self.zones.push(Zone { min_key, filter });
                }
                Ok(())
            }
        }
    }

    fn update_impl(&mut self, key: Key, value: Value) -> Result<bool> {
        match self.search(key)? {
            Ok(idx) => {
                self.file
                    .set(&mut self.pager, idx, Record::new(key, value))?;
                Ok(true)
            }
            Err(_) => Ok(false),
        }
    }

    fn delete_impl(&mut self, key: Key) -> Result<bool> {
        match self.search(key)? {
            Ok(idx) => {
                self.file.remove_at(&mut self.pager, idx)?;
                // Same membership-shift problem as insert; rebuild the
                // affected suffix of zones.
                let first_zone = self.zone_of_pos(idx);
                let n = self.file.len();
                let zr = self.zone_records();
                self.zones.truncate(first_zone);
                for zi in first_zone..n.div_ceil(zr) {
                    let start = zi * zr;
                    let end = ((zi + 1) * zr).min(n);
                    let mut filter =
                        QuotientFilter::with_capacity(zr.max(16), self.config.remainder_bits);
                    let mut min_key = Key::MAX;
                    for i in start..end {
                        let r = self.file.get(&mut self.pager, i)?;
                        filter.insert(r.key);
                        min_key = min_key.min(r.key);
                    }
                    self.charge_filter_write();
                    self.zones.push(Zone { min_key, filter });
                }
                Ok(true)
            }
            Err(_) => Ok(false),
        }
    }

    fn bulk_load_impl(&mut self, records: &[Record]) -> Result<()> {
        check_bulk_input(records)?;
        self.file.rebuild(&mut self.pager, records)?;
        self.rebuild_zones()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loaded(n: u64, cfg: BfTreeConfig) -> BfTree {
        let recs: Vec<Record> = (0..n).map(|k| Record::new(k * 2, k)).collect();
        let mut t = BfTree::with_config(cfg);
        t.bulk_load(&recs).unwrap();
        t
    }

    #[test]
    fn crud_roundtrip() {
        let mut t = BfTree::new();
        let recs: Vec<Record> = (0..2000u64).map(|k| Record::new(k * 2, k)).collect();
        t.bulk_load(&recs).unwrap();
        assert_eq!(t.get(1000).unwrap(), Some(500));
        assert_eq!(t.get(1001).unwrap(), None);
        assert!(t.update(1000, 9).unwrap());
        assert_eq!(t.get(1000).unwrap(), Some(9));
        t.insert(1001, 77).unwrap();
        assert_eq!(t.get(1001).unwrap(), Some(77));
        assert!(t.delete(1001).unwrap());
        assert!(!t.delete(1001).unwrap());
        assert_eq!(t.get(1001).unwrap(), None);
        assert_eq!(t.len(), 2000);
    }

    #[test]
    fn filters_prune_miss_probes() {
        let mut t = loaded(16 * RECORDS_PER_PAGE as u64, BfTreeConfig::default());
        let before = t.tracker().snapshot();
        // In-domain misses (odd keys): almost every zone filter says no.
        for k in 0..200u64 {
            assert_eq!(t.get(2 * k + 1).unwrap(), None);
        }
        let d = t.tracker().since(&before);
        // Without filters this would binary-search pages per miss (~5
        // pages each = 1000+); filters cut it to false positives only.
        assert!(
            d.page_reads < 300,
            "filters should prune most miss reads, got {}",
            d.page_reads
        );
    }

    #[test]
    fn more_remainder_bits_fewer_false_positive_reads() {
        // NB: the misses must be *random* keys. Structured probes (e.g.
        // the odd neighbors of the even live keys) land in the gaps of the
        // Fibonacci-hash fingerprint lattice (three-distance theorem) and
        // produce zero collisions at any remainder width.
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let miss_reads = |rbits: u32| {
            let mut t = loaded(
                32 * RECORDS_PER_PAGE as u64,
                BfTreeConfig {
                    remainder_bits: rbits,
                    ..Default::default()
                },
            );
            let mut rng = StdRng::seed_from_u64(6);
            let before = t.tracker().snapshot();
            for _ in 0..2000 {
                // Truly random keys above the live domain: they fence-route
                // to the last zone and measure its filter's real FPR.
                // (Structured probes — e.g. the odd neighbors of the live
                // even keys — sit in the gaps of the Fibonacci-hash
                // fingerprint lattice and never collide.)
                let k: u64 = rng.gen_range(1 << 32..u64::MAX);
                t.get(k).unwrap();
            }
            t.tracker().since(&before).page_reads
        };
        let coarse = miss_reads(3);
        let fine = miss_reads(12);
        assert!(
            fine < coarse,
            "12-bit remainders ({fine} reads) should beat 3-bit ({coarse})"
        );
        assert!(
            coarse > 20,
            "3-bit filters must show false positives: {coarse}"
        );
    }

    #[test]
    fn filter_space_tracks_remainder_bits() {
        let t4 = loaded(
            8 * RECORDS_PER_PAGE as u64,
            BfTreeConfig {
                remainder_bits: 4,
                ..Default::default()
            },
        );
        let t12 = loaded(
            8 * RECORDS_PER_PAGE as u64,
            BfTreeConfig {
                remainder_bits: 12,
                ..Default::default()
            },
        );
        assert!(t12.filter_bytes() > t4.filter_bytes());
        // The whole index stays small either way (quotient filters round
        // their slot count up to a power of two, so allow some slack).
        assert!(t12.space_profile().space_amplification() < 1.35);
    }

    #[test]
    fn hits_never_lost_to_filters() {
        // One-sided error: a live key must always be found.
        let mut t = loaded(4000, BfTreeConfig::default());
        for k in (0..4000u64).step_by(97) {
            assert_eq!(t.get(k * 2).unwrap(), Some(k), "key {}", k * 2);
        }
    }

    #[test]
    fn range_is_exact_despite_approximate_point_index() {
        let mut t = loaded(3000, BfTreeConfig::default());
        let rs = t.range(100, 200).unwrap();
        let keys: Vec<u64> = rs.iter().map(|r| r.key).collect();
        assert_eq!(keys, (100..=200).step_by(2).collect::<Vec<_>>());
    }

    #[test]
    fn deletes_keep_filters_accurate() {
        // The quotient filter's headline: removal really removes, so miss
        // probes on deleted keys stay cheap (a Bloom filter would decay).
        let mut t = loaded(8 * RECORDS_PER_PAGE as u64, BfTreeConfig::default());
        let victims: Vec<u64> = (0..200u64).map(|k| k * 2 * 4).collect();
        for &k in &victims {
            assert!(t.delete(k).unwrap());
        }
        let before = t.tracker().snapshot();
        for &k in &victims {
            assert_eq!(t.get(k).unwrap(), None);
        }
        let d = t.tracker().since(&before);
        assert!(
            d.page_reads < 150,
            "deleted keys should mostly be filtered, got {} reads",
            d.page_reads
        );
    }

    #[test]
    fn model_check_random_ops() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(47);
        let mut t = BfTree::with_config(BfTreeConfig {
            zone_records: RECORDS_PER_PAGE,
            remainder_bits: 10,
        });
        let base: Vec<Record> = (0..600u64).map(|k| Record::new(k * 3, k)).collect();
        t.bulk_load(&base).unwrap();
        let mut model: std::collections::BTreeMap<u64, u64> =
            base.iter().map(|r| (r.key, r.value)).collect();
        for step in 0..1200u64 {
            let k = rng.gen_range(0..2000u64);
            match rng.gen_range(0..6) {
                0 => {
                    t.insert(k, step).unwrap();
                    model.insert(k, step);
                }
                1 | 2 => {
                    assert_eq!(t.update(k, step).unwrap(), model.contains_key(&k));
                    model.entry(k).and_modify(|v| *v = step);
                }
                3 => {
                    assert_eq!(t.delete(k).unwrap(), model.remove(&k).is_some());
                }
                4 => {
                    assert_eq!(t.get(k).unwrap(), model.get(&k).copied(), "step {step}");
                }
                _ => {
                    let hi = k + rng.gen_range(0..60u64);
                    let got = t.range(k, hi).unwrap();
                    let expect: Vec<Record> = model
                        .range(k..=hi)
                        .map(|(&k, &v)| Record::new(k, v))
                        .collect();
                    assert_eq!(got, expect, "range {k}..{hi} step {step}");
                }
            }
            assert_eq!(t.len(), model.len());
        }
    }
}
