//! Column Imprints (Sidirourgos & Kersten, SIGMOD 2013): one small bit
//! signature per cacheline of a column, marking which value-range bins
//! occur in that cacheline. A scan with a range predicate first ANDs the
//! predicate's bin mask against each imprint and touches only the
//! cachelines that can match — computation and a sliver of space traded
//! for read traffic, the paper's space-optimized corner.

use rum_core::{Key, Record};

/// Records per "cacheline" unit (64 bytes / 16-byte records).
pub const LINE_RECORDS: usize = 4;
/// Bins per imprint (one u64 signature word).
pub const BINS: usize = 64;

/// A column imprint over an in-memory column snapshot.
#[derive(Clone, Debug)]
pub struct ColumnImprint {
    /// Bin boundaries: bin `i` covers `[bounds[i], bounds[i+1])`;
    /// `bounds[BINS]` is an exclusive upper sentinel.
    bounds: Vec<Key>,
    /// One signature word per cacheline.
    imprints: Vec<u64>,
    lines: usize,
}

impl ColumnImprint {
    /// Build an imprint over `column` with equi-depth bins sampled from
    /// the data itself (the original uses sampled histograms, too).
    pub fn build(column: &[Record]) -> Self {
        let mut sample: Vec<Key> = column.iter().map(|r| r.key).collect();
        sample.sort_unstable();
        sample.dedup();
        let mut bounds = Vec::with_capacity(BINS + 1);
        if sample.is_empty() {
            bounds = vec![0; BINS + 1];
        } else {
            for i in 0..BINS {
                let idx = i * sample.len() / BINS;
                bounds.push(sample[idx]);
            }
            bounds.push(Key::MAX);
            // Bin boundaries must be strictly increasing where possible;
            // duplicates collapse harmlessly (those bins stay unused).
        }
        let lines = column.len().div_ceil(LINE_RECORDS);
        let mut imprints = vec![0u64; lines];
        let this = ColumnImprint {
            bounds,
            imprints: Vec::new(),
            lines,
        };
        for (i, chunk) in column.chunks(LINE_RECORDS).enumerate() {
            let mut sig = 0u64;
            for r in chunk {
                sig |= 1 << this.bin_of(r.key);
            }
            imprints[i] = sig;
        }
        ColumnImprint { imprints, ..this }
    }

    /// Number of cachelines covered.
    pub fn lines(&self) -> usize {
        self.lines
    }

    /// Imprint size in bytes — the auxiliary space cost.
    pub fn size_bytes(&self) -> u64 {
        (self.imprints.len() * 8 + self.bounds.len() * 8) as u64
    }

    /// Bin index of `key` (largest bin whose lower bound ≤ key).
    pub fn bin_of(&self, key: Key) -> usize {
        match self.bounds[..BINS].binary_search(&key) {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) => i - 1,
        }
    }

    /// Mask of bins overlapping `[lo, hi]`.
    pub fn mask_for(&self, lo: Key, hi: Key) -> u64 {
        if lo > hi {
            return 0;
        }
        let (b_lo, b_hi) = (self.bin_of(lo), self.bin_of(hi));
        let width = b_hi - b_lo + 1;
        if width >= 64 {
            u64::MAX
        } else {
            ((1u64 << width) - 1) << b_lo
        }
    }

    /// Indices of cachelines that *may* contain keys in `[lo, hi]`.
    pub fn candidate_lines(&self, lo: Key, hi: Key) -> Vec<usize> {
        let mask = self.mask_for(lo, hi);
        self.imprints
            .iter()
            .enumerate()
            .filter(|(_, &sig)| sig & mask != 0)
            .map(|(i, _)| i)
            .collect()
    }

    /// Fraction of cachelines skipped for `[lo, hi]` (diagnostic).
    pub fn skip_ratio(&self, lo: Key, hi: Key) -> f64 {
        if self.lines == 0 {
            return 0.0;
        }
        1.0 - self.candidate_lines(lo, hi).len() as f64 / self.lines as f64
    }

    /// Scan `column` for `[lo, hi]` touching only candidate lines.
    /// Returns matching records and the number of lines actually read.
    pub fn scan(&self, column: &[Record], lo: Key, hi: Key) -> (Vec<Record>, usize) {
        let lines = self.candidate_lines(lo, hi);
        let mut out = Vec::new();
        for &li in &lines {
            let start = li * LINE_RECORDS;
            let end = (start + LINE_RECORDS).min(column.len());
            for r in &column[start..end] {
                if r.key >= lo && r.key <= hi {
                    out.push(*r);
                }
            }
        }
        out.sort_unstable();
        (out, lines.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sorted_column(n: u64) -> Vec<Record> {
        (0..n).map(|k| Record::new(k, k)).collect()
    }

    #[test]
    fn scan_finds_exactly_the_matches() {
        let col = sorted_column(10_000);
        let imp = ColumnImprint::build(&col);
        let (hits, _) = imp.scan(&col, 400, 450);
        let keys: Vec<u64> = hits.iter().map(|r| r.key).collect();
        assert_eq!(keys, (400..=450).collect::<Vec<_>>());
    }

    #[test]
    fn narrow_ranges_skip_most_lines_on_clustered_data() {
        let col = sorted_column(100_000);
        let imp = ColumnImprint::build(&col);
        let ratio = imp.skip_ratio(5000, 5100);
        assert!(ratio > 0.9, "expected >90% skipped, got {ratio}");
    }

    #[test]
    fn full_range_skips_nothing() {
        let col = sorted_column(1000);
        let imp = ColumnImprint::build(&col);
        assert_eq!(imp.skip_ratio(0, u64::MAX), 0.0);
        let (hits, lines) = imp.scan(&col, 0, u64::MAX);
        assert_eq!(hits.len(), 1000);
        assert_eq!(lines, imp.lines());
    }

    #[test]
    fn no_false_negatives_on_random_data() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(8);
        let col: Vec<Record> = (0..5000)
            .map(|_| Record::new(rng.gen_range(0..1_000_000), 0))
            .collect();
        let imp = ColumnImprint::build(&col);
        for _ in 0..50 {
            let lo = rng.gen_range(0..900_000u64);
            let hi = lo + rng.gen_range(0..100_000u64);
            let (hits, _) = imp.scan(&col, lo, hi);
            let mut expect: Vec<Record> = col
                .iter()
                .copied()
                .filter(|r| r.key >= lo && r.key <= hi)
                .collect();
            expect.sort_unstable();
            assert_eq!(hits, expect);
        }
    }

    #[test]
    fn imprint_is_small() {
        let col = sorted_column(100_000);
        let imp = ColumnImprint::build(&col);
        let data_bytes = (col.len() * 16) as u64;
        assert!(
            imp.size_bytes() < data_bytes / 7,
            "imprint {} vs data {}",
            imp.size_bytes(),
            data_bytes
        );
    }

    #[test]
    fn empty_and_tiny_columns() {
        let imp = ColumnImprint::build(&[]);
        assert_eq!(imp.lines(), 0);
        assert!(imp.candidate_lines(0, 100).is_empty());
        let col = vec![Record::new(7, 1)];
        let imp = ColumnImprint::build(&col);
        let (hits, _) = imp.scan(&col, 0, 10);
        assert_eq!(hits, col);
    }

    #[test]
    fn mask_widths() {
        let col = sorted_column(6400);
        let imp = ColumnImprint::build(&col);
        assert_eq!(imp.mask_for(0, u64::MAX), u64::MAX);
        assert_eq!(imp.mask_for(10, 5), 0);
        let narrow = imp.mask_for(100, 101);
        assert!(narrow.count_ones() <= 2);
    }
}
