//! ZoneMaps / Small Materialized Aggregates: a packed column plus one
//! tiny metadata record (min, max, count, sum) per partition of `P`
//! records.
//!
//! Table 1 notes: "ZoneMaps have the smaller size being a sparse index"
//! with `O(N/P/B)` cost for everything — *in the best case*, which assumes
//! the data is clustered so a single partition overlaps any given key.
//! This implementation makes that dependence visible: bulk-loaded (sorted)
//! data gets disjoint zones and near-optimal pruning, while random inserts
//! widen zones until pruning stops working — exactly the degradation the
//! paper's "best case" footnote hides.

use std::sync::Arc;

use rum_core::{
    check_bulk_input, AccessMethod, CostTracker, DataClass, Key, Record, Result, SpaceProfile,
    Value, RECORDS_PER_PAGE,
};
use rum_storage::{MemDevice, Pager};

// Reuse the packed-pages layout from rum-columns via a local copy of the
// dependency; the columns crate exposes it publicly.
use rum_columns::packed::PackedFile;

/// Per-zone metadata: 32 bytes (min, max, count, sum) — the SMA extension
/// of the plain min/max zone map.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Zone {
    pub min: Key,
    pub max: Key,
    pub count: u32,
    pub sum: u64,
}

impl Zone {
    const BYTES: u64 = 32;

    fn empty() -> Zone {
        Zone {
            min: Key::MAX,
            max: 0,
            count: 0,
            sum: 0,
        }
    }

    fn overlaps(&self, lo: Key, hi: Key) -> bool {
        self.count > 0 && self.min <= hi && self.max >= lo
    }

    fn absorb(&mut self, r: &Record) {
        self.min = self.min.min(r.key);
        self.max = self.max.max(r.key);
        self.count += 1;
        self.sum = self.sum.wrapping_add(r.value);
    }
}

/// Configuration: partition size `P` in records (Table 1's parameter),
/// and whether inserts are blind appends (the paper's O(1)-ish zone-map
/// maintenance; the caller guarantees fresh keys).
#[derive(Clone, Copy, Debug)]
pub struct ZoneMapConfig {
    pub partition_records: usize,
    pub blind_appends: bool,
}

impl Default for ZoneMapConfig {
    fn default() -> Self {
        ZoneMapConfig {
            partition_records: 16 * RECORDS_PER_PAGE, // P = 4096 records
            blind_appends: false,
        }
    }
}

/// A packed column with zone-map pruning.
pub struct ZoneMappedColumn {
    file: PackedFile,
    zones: Vec<Zone>,
    config: ZoneMapConfig,
    pager: Pager<MemDevice>,
    tracker: Arc<CostTracker>,
}

impl ZoneMappedColumn {
    pub fn new() -> Self {
        Self::with_config(ZoneMapConfig::default())
    }

    pub fn with_config(config: ZoneMapConfig) -> Self {
        assert!(
            config.partition_records >= RECORDS_PER_PAGE,
            "partitions must be at least one page"
        );
        assert_eq!(
            config.partition_records % RECORDS_PER_PAGE,
            0,
            "partition size must be page-aligned"
        );
        let tracker = CostTracker::new();
        ZoneMappedColumn {
            file: PackedFile::new(),
            zones: Vec::new(),
            config,
            pager: Pager::new(MemDevice::new(), Arc::clone(&tracker)),
            tracker,
        }
    }

    pub fn zone_count(&self) -> usize {
        self.zones.len()
    }

    fn p(&self) -> usize {
        self.config.partition_records
    }

    fn zone_of(&self, record_idx: usize) -> usize {
        record_idx / self.p()
    }

    /// Charge a scan of the zone directory (auxiliary metadata).
    fn charge_zone_scan(&self) {
        self.tracker
            .read(DataClass::Aux, self.zones.len() as u64 * Zone::BYTES);
    }

    /// Record index range of zone `zi`.
    fn zone_span(&self, zi: usize) -> (usize, usize) {
        let start = zi * self.p();
        let end = ((zi + 1) * self.p()).min(self.file.len());
        (start, end)
    }

    /// Find `key` within zone `zi`, reading its pages.
    fn find_in_zone(&mut self, zi: usize, key: Key) -> Result<Option<usize>> {
        let (start, end) = self.zone_span(zi);
        let first_page = start / RECORDS_PER_PAGE;
        let last_page = (end.saturating_sub(1)) / RECORDS_PER_PAGE;
        for page_idx in first_page..=last_page {
            if page_idx >= self.file.num_pages() {
                break;
            }
            let recs = self.file.read_page(&mut self.pager, page_idx)?;
            if let Some(slot) = recs.iter().position(|r| r.key == key) {
                let idx = page_idx * RECORDS_PER_PAGE + slot;
                if idx >= start && idx < end {
                    return Ok(Some(idx));
                }
            }
        }
        Ok(None)
    }

    /// Recompute zone `zi`'s metadata by reading its pages.
    fn recompute_zone(&mut self, zi: usize) -> Result<()> {
        let (start, end) = self.zone_span(zi);
        let mut z = Zone::empty();
        if start < end {
            let first_page = start / RECORDS_PER_PAGE;
            let last_page = (end - 1) / RECORDS_PER_PAGE;
            for page_idx in first_page..=last_page {
                let recs = self.file.read_page(&mut self.pager, page_idx)?.to_vec();
                for (i, r) in recs.iter().enumerate() {
                    let idx = page_idx * RECORDS_PER_PAGE + i;
                    if idx >= start && idx < end {
                        z.absorb(r);
                    }
                }
            }
        }
        if zi < self.zones.len() {
            self.zones[zi] = z;
            // Trim trailing empty zones.
            while matches!(self.zones.last(), Some(last) if last.count == 0) {
                self.zones.pop();
            }
            // Maintaining the sparse index costs one metadata write.
            self.tracker.write(DataClass::Aux, Zone::BYTES);
        }
        Ok(())
    }

    /// SUM/COUNT over `[lo, hi]` answered from zone metadata where zones
    /// are fully covered, reading pages only for partially covered zones —
    /// the Small Materialized Aggregates trick.
    pub fn aggregate(&mut self, lo: Key, hi: Key) -> Result<(u64, u64)> {
        self.charge_zone_scan();
        let mut count = 0u64;
        let mut sum = 0u64;
        for zi in 0..self.zones.len() {
            let z = self.zones[zi];
            if !z.overlaps(lo, hi) {
                continue;
            }
            if z.min >= lo && z.max <= hi {
                // Fully covered: metadata answers it.
                count += z.count as u64;
                sum = sum.wrapping_add(z.sum);
            } else {
                // Partially covered: fall back to data pages.
                let (start, end) = self.zone_span(zi);
                let first_page = start / RECORDS_PER_PAGE;
                let last_page = (end.saturating_sub(1)) / RECORDS_PER_PAGE;
                for page_idx in first_page..=last_page.min(self.file.num_pages().saturating_sub(1))
                {
                    let recs = self.file.read_page(&mut self.pager, page_idx)?.to_vec();
                    for (i, r) in recs.iter().enumerate() {
                        let idx = page_idx * RECORDS_PER_PAGE + i;
                        if idx >= start && idx < end && r.key >= lo && r.key <= hi {
                            count += 1;
                            sum = sum.wrapping_add(r.value);
                        }
                    }
                }
            }
        }
        Ok((count, sum))
    }
}

impl Default for ZoneMappedColumn {
    fn default() -> Self {
        Self::new()
    }
}

impl AccessMethod for ZoneMappedColumn {
    fn name(&self) -> String {
        "zonemap".into()
    }

    fn len(&self) -> usize {
        self.file.len()
    }

    fn tracker(&self) -> &Arc<CostTracker> {
        &self.tracker
    }

    fn space_profile(&self) -> SpaceProfile {
        let physical = self.pager.physical_bytes()
            + self.file.directory_bytes()
            + self.zones.len() as u64 * Zone::BYTES;
        SpaceProfile::from_physical(self.file.len(), physical)
    }

    fn get_impl(&mut self, key: Key) -> Result<Option<Value>> {
        self.charge_zone_scan();
        for zi in 0..self.zones.len() {
            if self.zones[zi].overlaps(key, key) {
                if let Some(idx) = self.find_in_zone(zi, key)? {
                    return Ok(Some(self.file.get(&mut self.pager, idx)?.value));
                }
            }
        }
        Ok(None)
    }

    fn range_impl(&mut self, lo: Key, hi: Key) -> Result<Vec<Record>> {
        self.charge_zone_scan();
        let mut out = Vec::new();
        for zi in 0..self.zones.len() {
            if !self.zones[zi].overlaps(lo, hi) {
                continue;
            }
            let (start, end) = self.zone_span(zi);
            let first_page = start / RECORDS_PER_PAGE;
            let last_page = (end.saturating_sub(1)) / RECORDS_PER_PAGE;
            for page_idx in first_page..=last_page.min(self.file.num_pages().saturating_sub(1)) {
                let recs = self.file.read_page(&mut self.pager, page_idx)?.to_vec();
                for (i, r) in recs.iter().enumerate() {
                    let idx = page_idx * RECORDS_PER_PAGE + i;
                    if idx >= start && idx < end && r.key >= lo && r.key <= hi {
                        out.push(*r);
                    }
                }
            }
        }
        out.sort_unstable();
        Ok(out)
    }

    fn insert_impl(&mut self, key: Key, value: Value) -> Result<()> {
        // Upsert: check zones for an existing copy first (skipped in
        // blind-append mode, where the caller guarantees fresh keys).
        self.charge_zone_scan();
        for zi in 0..if self.config.blind_appends {
            0
        } else {
            self.zones.len()
        } {
            if self.zones[zi].overlaps(key, key) {
                if let Some(idx) = self.find_in_zone(zi, key)? {
                    let old = self.file.get(&mut self.pager, idx)?;
                    self.file
                        .set(&mut self.pager, idx, Record::new(key, value))?;
                    // Fix the SMA sum in place; min/max are unchanged by a
                    // value update.
                    let z = &mut self.zones[zi];
                    z.sum = z.sum.wrapping_sub(old.value).wrapping_add(value);
                    self.tracker.write(DataClass::Aux, Zone::BYTES);
                    return Ok(());
                }
            }
        }
        // Append; extend the zone directory as needed.
        let idx = self.file.len();
        self.file.push(&mut self.pager, Record::new(key, value))?;
        let zi = self.zone_of(idx);
        if zi >= self.zones.len() {
            self.zones.push(Zone::empty());
        }
        self.zones[zi].absorb(&Record::new(key, value));
        self.tracker.write(DataClass::Aux, Zone::BYTES);
        Ok(())
    }

    fn update_impl(&mut self, key: Key, value: Value) -> Result<bool> {
        self.charge_zone_scan();
        for zi in 0..self.zones.len() {
            if self.zones[zi].overlaps(key, key) {
                if let Some(idx) = self.find_in_zone(zi, key)? {
                    let old = self.file.get(&mut self.pager, idx)?;
                    self.file
                        .set(&mut self.pager, idx, Record::new(key, value))?;
                    let z = &mut self.zones[zi];
                    z.sum = z.sum.wrapping_sub(old.value).wrapping_add(value);
                    self.tracker.write(DataClass::Aux, Zone::BYTES);
                    return Ok(true);
                }
            }
        }
        Ok(false)
    }

    fn delete_impl(&mut self, key: Key) -> Result<bool> {
        self.charge_zone_scan();
        for zi in 0..self.zones.len() {
            if self.zones[zi].overlaps(key, key) {
                if let Some(idx) = self.find_in_zone(zi, key)? {
                    // Swap-remove with the global tail record.
                    let last = self.file.len() - 1;
                    let last_zone = self.zone_of(last);
                    if idx != last {
                        let tail = self.file.get(&mut self.pager, last)?;
                        self.file.set(&mut self.pager, idx, tail)?;
                    }
                    self.file.pop(&mut self.pager)?;
                    // Both affected zones need their metadata rebuilt: the
                    // hole zone (a foreign record moved in) and the tail
                    // zone (its last record left).
                    if zi < self.zones.len() {
                        self.recompute_zone(zi)?;
                    }
                    if last_zone != zi && last_zone < self.zones.len() {
                        self.recompute_zone(last_zone)?;
                    }
                    return Ok(true);
                }
            }
        }
        Ok(false)
    }

    fn bulk_load_impl(&mut self, records: &[Record]) -> Result<()> {
        check_bulk_input(records)?;
        self.file.rebuild(&mut self.pager, records)?;
        self.zones.clear();
        for chunk in records.chunks(self.p()) {
            let mut z = Zone::empty();
            for r in chunk {
                z.absorb(r);
            }
            self.zones.push(z);
        }
        self.tracker
            .write(DataClass::Aux, self.zones.len() as u64 * Zone::BYTES);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loaded(n: u64, p: usize) -> ZoneMappedColumn {
        let recs: Vec<Record> = (0..n).map(|k| Record::new(k, 1)).collect();
        let mut z = ZoneMappedColumn::with_config(ZoneMapConfig {
            partition_records: p,
            ..Default::default()
        });
        z.bulk_load(&recs).unwrap();
        z
    }

    #[test]
    fn crud_roundtrip() {
        let mut z = ZoneMappedColumn::new();
        z.insert(10, 100).unwrap();
        z.insert(20, 200).unwrap();
        assert_eq!(z.get(10).unwrap(), Some(100));
        assert_eq!(z.get(15).unwrap(), None);
        assert!(z.update(20, 222).unwrap());
        assert!(!z.update(21, 0).unwrap());
        assert!(z.delete(10).unwrap());
        assert!(!z.delete(10).unwrap());
        assert_eq!(z.len(), 1);
    }

    #[test]
    fn insert_is_upsert() {
        let mut z = ZoneMappedColumn::new();
        z.insert(5, 1).unwrap();
        z.insert(5, 2).unwrap();
        assert_eq!(z.len(), 1);
        assert_eq!(z.get(5).unwrap(), Some(2));
    }

    #[test]
    fn clustered_point_query_reads_one_zone() {
        let p = 4 * RECORDS_PER_PAGE;
        let mut z = loaded(64 * RECORDS_PER_PAGE as u64, p);
        let zones = z.zone_count();
        assert_eq!(zones, 16);
        let before = z.tracker().snapshot();
        z.get(12345).unwrap();
        let reads = z.tracker().since(&before).page_reads as usize;
        assert!(
            reads <= p / RECORDS_PER_PAGE,
            "clustered lookup should stay within one zone's {} pages, read {reads}",
            p / RECORDS_PER_PAGE
        );
    }

    #[test]
    fn pruning_degrades_without_clustering() {
        // Random-order inserts widen every zone to the full key domain, so
        // a miss must scan everything — the hidden cost of the paper's
        // "best case" assumption.
        use rand::{rngs::StdRng, seq::SliceRandom, SeedableRng};
        let n = 16 * RECORDS_PER_PAGE as u64;
        // Even keys only, so odd keys are in-domain misses.
        let mut keys: Vec<u64> = (0..n).map(|k| k * 2).collect();
        keys.shuffle(&mut StdRng::seed_from_u64(4));
        let mut scattered = ZoneMappedColumn::with_config(ZoneMapConfig {
            partition_records: 4 * RECORDS_PER_PAGE,
            ..Default::default()
        });
        for &k in &keys {
            scattered.insert(k, 1).unwrap();
        }
        let recs: Vec<Record> = (0..n).map(|k| Record::new(k * 2, 1)).collect();
        let mut clustered = ZoneMappedColumn::with_config(ZoneMapConfig {
            partition_records: 4 * RECORDS_PER_PAGE,
            ..Default::default()
        });
        clustered.bulk_load(&recs).unwrap();

        let cost = |z: &mut ZoneMappedColumn| {
            let before = z.tracker().snapshot();
            z.get(n + 1).unwrap(); // an in-domain miss (odd key)
            z.tracker().since(&before).page_reads
        };
        let c_clustered = cost(&mut clustered);
        let c_scattered = cost(&mut scattered);
        assert!(
            c_clustered <= 4,
            "clustered miss confined to one zone, read {c_clustered}"
        );
        assert!(
            c_scattered >= 12,
            "scattered miss must scan most pages, read {c_scattered}"
        );
    }

    #[test]
    fn index_size_is_tiny() {
        let z = loaded(64 * RECORDS_PER_PAGE as u64, 16 * RECORDS_PER_PAGE);
        let p = z.space_profile();
        let mo = p.space_amplification();
        assert!(mo < 1.005, "zone maps are nearly free: mo = {mo}");
        assert!(p.aux_bytes > 0);
    }

    #[test]
    fn smaller_partitions_cost_more_space_but_prune_better() {
        let n = 64 * RECORDS_PER_PAGE as u64;
        let mut fine = loaded(n, RECORDS_PER_PAGE);
        let mut coarse = loaded(n, 32 * RECORDS_PER_PAGE);
        assert!(fine.space_profile().aux_bytes > coarse.space_profile().aux_bytes);
        let cost = |z: &mut ZoneMappedColumn| {
            let before = z.tracker().snapshot();
            z.range(1000, 1100).unwrap();
            z.tracker().since(&before).page_reads
        };
        assert!(cost(&mut fine) < cost(&mut coarse));
    }

    #[test]
    fn range_results_are_correct() {
        let mut z = loaded(3000, RECORDS_PER_PAGE);
        let rs = z.range(500, 520).unwrap();
        let keys: Vec<u64> = rs.iter().map(|r| r.key).collect();
        assert_eq!(keys, (500..=520).collect::<Vec<_>>());
    }

    #[test]
    fn aggregate_uses_metadata_for_covered_zones() {
        let n = 16 * RECORDS_PER_PAGE as u64;
        let mut z = loaded(n, 4 * RECORDS_PER_PAGE);
        let before = z.tracker().snapshot();
        // Whole-domain aggregate: every zone fully covered, zero page reads.
        let (count, sum) = z.aggregate(0, u64::MAX).unwrap();
        assert_eq!(count, n);
        assert_eq!(sum, n); // every value is 1
        assert_eq!(z.tracker().since(&before).page_reads, 0);
        // Partial range: only boundary zones read pages.
        let before = z.tracker().snapshot();
        let (count, _) = z.aggregate(100, 2100).unwrap();
        assert_eq!(count, 2001);
        let reads = z.tracker().since(&before).page_reads;
        assert!(reads <= 8, "only boundary zones read, got {reads}");
    }

    #[test]
    fn delete_keeps_zones_consistent() {
        let mut z = loaded(3 * RECORDS_PER_PAGE as u64, RECORDS_PER_PAGE);
        for k in (0..200u64).step_by(3) {
            assert!(z.delete(k).unwrap());
        }
        // Every remaining key still reachable, deleted ones gone.
        for k in 0..200u64 {
            let expect = if k % 3 == 0 { None } else { Some(1) };
            assert_eq!(z.get(k).unwrap(), expect, "key {k}");
        }
    }

    #[test]
    fn model_check_random_ops() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        let mut z = ZoneMappedColumn::with_config(ZoneMapConfig {
            partition_records: RECORDS_PER_PAGE,
            ..Default::default()
        });
        let mut model = std::collections::BTreeMap::new();
        for step in 0..3000u64 {
            let k = rng.gen_range(0..1000u64);
            match rng.gen_range(0..5) {
                0 | 1 => {
                    z.insert(k, step).unwrap();
                    model.insert(k, step);
                }
                2 => {
                    assert_eq!(z.update(k, step).unwrap(), model.contains_key(&k));
                    model.entry(k).and_modify(|v| *v = step);
                }
                3 => {
                    assert_eq!(z.delete(k).unwrap(), model.remove(&k).is_some());
                }
                _ => {
                    assert_eq!(z.get(k).unwrap(), model.get(&k).copied(), "step {step}");
                }
            }
            assert_eq!(z.len(), model.len());
        }
        let all = z.range(0, u64::MAX).unwrap();
        let expect: Vec<Record> = model.iter().map(|(&k, &v)| Record::new(k, v)).collect();
        assert_eq!(all, expect);
    }
}
