//! # rum-sparse
//!
//! Sparse, space-optimized secondary indexes — the right corner of the
//! paper's Figure 1: "Sparse indexes, which are light-weight secondary
//! indexes, like ZoneMaps, Small Materialized Aggregates and Column
//! Imprints".
//!
//! * [`ZoneMappedColumn`] — a packed column with per-partition min/max
//!   (+ count/sum, the SMA generalization): Table 1's "ZoneMaps" row.
//!   Tiny index (`O(N/P/B)` pages), but reads must fetch whole partitions
//!   and effectiveness depends on clustering.
//! * [`ColumnImprint`] — per-cacheline bit signatures over value-range
//!   bins (Sidirourgos & Kersten): a scan accelerator that skips
//!   cachelines whose signature cannot match the predicate.
//! * [`BfTree`] — approximate tree indexing (§4's "approximate tree
//!   indexing" / §5's updatable-filter roadmap item): per-zone quotient
//!   filters route point probes, trading a sliver of MO and occasional
//!   false-positive page reads for a near-zero dense-index footprint.

pub mod bftree;
pub mod imprint;
pub mod zonemap;

pub use bftree::{BfTree, BfTreeConfig};
pub use imprint::ColumnImprint;
pub use zonemap::{ZoneMapConfig, ZoneMappedColumn};
