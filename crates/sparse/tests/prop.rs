//! Property-based tests for the sparse indexes.

use proptest::prelude::*;
use rum_core::{AccessMethod, Record, RECORDS_PER_PAGE};
use rum_sparse::{ColumnImprint, ZoneMapConfig, ZoneMappedColumn};
use std::collections::BTreeMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn zonemap_matches_model(
        base_keys in proptest::collection::btree_set(0u16..800, 0..150),
        ops in proptest::collection::vec(
            (0u8..5, any::<u16>(), any::<u32>()), 1..150
        ),
    ) {
        let base: Vec<Record> = base_keys
            .iter()
            .map(|&k| Record::new(k as u64, 7))
            .collect();
        let mut z = ZoneMappedColumn::with_config(ZoneMapConfig {
            partition_records: RECORDS_PER_PAGE,
            ..Default::default()
        });
        z.bulk_load(&base).unwrap();
        let mut model: BTreeMap<u64, u64> = base.iter().map(|r| (r.key, r.value)).collect();
        for &(op, k, v) in &ops {
            let k = k as u64;
            match op {
                0 => {
                    z.insert(k, v as u64).unwrap();
                    model.insert(k, v as u64);
                }
                1 => {
                    prop_assert_eq!(z.update(k, v as u64).unwrap(), model.contains_key(&k));
                    model.entry(k).and_modify(|x| *x = v as u64);
                }
                2 => {
                    prop_assert_eq!(z.delete(k).unwrap(), model.remove(&k).is_some());
                }
                3 => {
                    prop_assert_eq!(z.get(k).unwrap(), model.get(&k).copied());
                }
                _ => {
                    let hi = k + (v % 64) as u64;
                    let got = z.range(k, hi).unwrap();
                    let expect: Vec<Record> = model
                        .range(k..=hi)
                        .map(|(&k, &v)| Record::new(k, v))
                        .collect();
                    prop_assert_eq!(got, expect);
                }
            }
            prop_assert_eq!(z.len(), model.len());
        }
        // Aggregates agree with direct computation.
        let (count, sum) = z.aggregate(0, u64::MAX).unwrap();
        prop_assert_eq!(count as usize, model.len());
        let expect_sum: u64 = model.values().fold(0u64, |a, &b| a.wrapping_add(b));
        prop_assert_eq!(sum, expect_sum);
    }

    #[test]
    fn imprint_scans_never_lose_records(
        keys in proptest::collection::vec(0u64..100_000, 0..800),
        queries in proptest::collection::vec((0u64..100_000, 0u64..20_000), 1..20),
    ) {
        let col: Vec<Record> = keys.iter().map(|&k| Record::new(k, k)).collect();
        let imp = ColumnImprint::build(&col);
        for &(lo, span) in &queries {
            let hi = lo + span;
            let (hits, _) = imp.scan(&col, lo, hi);
            let mut expect: Vec<Record> = col
                .iter()
                .copied()
                .filter(|r| r.key >= lo && r.key <= hi)
                .collect();
            expect.sort_unstable();
            prop_assert_eq!(hits, expect);
        }
    }
}
