//! Property-based differential testing of the B+-tree against a model,
//! across node sizes and operation interleavings.

use proptest::prelude::*;
use rum_btree::{BTree, BTreeConfig, SplitPolicy};
use rum_core::{AccessMethod, Record};
use std::collections::BTreeMap;

#[derive(Clone, Debug)]
enum TreeOp {
    Insert(u16, u64),
    Update(u16, u64),
    Delete(u16),
    Get(u16),
    Range(u16, u16),
}

fn op_strategy() -> impl Strategy<Value = TreeOp> {
    prop_oneof![
        (any::<u16>(), any::<u64>()).prop_map(|(k, v)| TreeOp::Insert(k, v)),
        (any::<u16>(), any::<u64>()).prop_map(|(k, v)| TreeOp::Update(k, v)),
        any::<u16>().prop_map(TreeOp::Delete),
        any::<u16>().prop_map(TreeOp::Get),
        (any::<u16>(), 0u16..64).prop_map(|(lo, span)| TreeOp::Range(lo, span)),
    ]
}

fn run_ops(config: BTreeConfig, ops: &[TreeOp]) {
    let mut tree = BTree::with_config(config);
    let mut model: BTreeMap<u64, u64> = BTreeMap::new();
    for op in ops {
        match *op {
            TreeOp::Insert(k, v) => {
                tree.insert(k as u64, v).unwrap();
                model.insert(k as u64, v);
            }
            TreeOp::Update(k, v) => {
                assert_eq!(
                    tree.update(k as u64, v).unwrap(),
                    model.contains_key(&(k as u64))
                );
                model.entry(k as u64).and_modify(|x| *x = v);
            }
            TreeOp::Delete(k) => {
                assert_eq!(
                    tree.delete(k as u64).unwrap(),
                    model.remove(&(k as u64)).is_some()
                );
            }
            TreeOp::Get(k) => {
                assert_eq!(tree.get(k as u64).unwrap(), model.get(&(k as u64)).copied());
            }
            TreeOp::Range(lo, span) => {
                let (lo, hi) = (lo as u64, lo as u64 + span as u64);
                let got = tree.range(lo, hi).unwrap();
                let expect: Vec<Record> = model
                    .range(lo..=hi)
                    .map(|(&k, &v)| Record::new(k, v))
                    .collect();
                assert_eq!(got, expect);
            }
        }
        assert_eq!(tree.len(), model.len());
    }
    // Structural sanity at the end.
    let all = tree.range(0, u64::MAX).unwrap();
    assert!(all.windows(2).all(|w| w[0].key < w[1].key));
    assert_eq!(all.len(), model.len());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn tree_matches_model_default_nodes(ops in proptest::collection::vec(op_strategy(), 1..400)) {
        run_ops(BTreeConfig::default(), &ops);
    }

    #[test]
    fn tree_matches_model_tiny_nodes(ops in proptest::collection::vec(op_strategy(), 1..400)) {
        // 256-byte nodes force frequent splits at every level.
        run_ops(
            BTreeConfig {
                node_size: 256,
                ..Default::default()
            },
            &ops,
        );
    }

    #[test]
    fn tree_matches_model_right_heavy(ops in proptest::collection::vec(op_strategy(), 1..300)) {
        run_ops(
            BTreeConfig {
                node_size: 512,
                split_policy: SplitPolicy::RightHeavy,
                ..Default::default()
            },
            &ops,
        );
    }

    #[test]
    fn bulk_load_equals_insert_loading(
        mut keys in proptest::collection::btree_set(any::<u32>(), 1..500),
        fill in 0.4f64..1.0,
    ) {
        let records: Vec<Record> = keys
            .iter()
            .map(|&k| Record::new(k as u64, k as u64 + 1))
            .collect();
        let mut bulk = BTree::with_config(BTreeConfig {
            fill_factor: fill,
            ..Default::default()
        });
        bulk.bulk_load(&records).unwrap();
        let mut incr = BTree::new();
        for r in &records {
            incr.insert(r.key, r.value).unwrap();
        }
        prop_assert_eq!(
            bulk.range(0, u64::MAX).unwrap(),
            incr.range(0, u64::MAX).unwrap()
        );
        keys.clear();
    }
}
