//! B+-tree node layout: fixed-size byte buffers of `node_size` bytes.
//!
//! ```text
//! internal: [tag:u8][pad:u8][count:u16][pad:u32]
//!           [keys: count × u64][children: (count+1) × u64]
//! leaf:     [tag:u8][pad:u8][count:u16][pad:u32][next: u64]
//!           [records: count × 16B]
//! ```

use rum_core::{Key, Record, Result, RumError, RECORD_SIZE};

/// Identifier of a node within a [`NodeStore`](crate::store::NodeStore).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u64);

impl NodeId {
    pub const INVALID: NodeId = NodeId(u64::MAX);

    #[inline]
    pub fn is_valid(&self) -> bool {
        *self != NodeId::INVALID
    }
}

const TAG_INTERNAL: u8 = 1;
const TAG_LEAF: u8 = 2;
const HEADER: usize = 8;
const LEAF_HEADER: usize = 16; // header + next pointer

/// Maximum keys an internal node of `node_size` bytes can hold.
pub const fn internal_capacity(node_size: usize) -> usize {
    // HEADER + cap*8 (keys) + (cap+1)*8 (children) <= node_size
    (node_size - HEADER - 8) / 16
}

/// Maximum records a leaf of `node_size` bytes can hold.
pub const fn leaf_capacity(node_size: usize) -> usize {
    (node_size - LEAF_HEADER) / RECORD_SIZE
}

/// A decoded B+-tree node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Node {
    Internal {
        /// Separator keys; `children[i]` covers keys `< keys[i]`,
        /// `children[len]` covers the rest.
        keys: Vec<Key>,
        children: Vec<NodeId>,
    },
    Leaf {
        /// Records sorted by strictly ascending key.
        records: Vec<Record>,
        /// Right sibling for range scans.
        next: NodeId,
    },
}

impl Node {
    pub fn empty_leaf() -> Node {
        Node::Leaf {
            records: Vec::new(),
            next: NodeId::INVALID,
        }
    }

    pub fn is_leaf(&self) -> bool {
        matches!(self, Node::Leaf { .. })
    }

    /// Entry count (keys for internal, records for leaf).
    pub fn count(&self) -> usize {
        match self {
            Node::Internal { keys, .. } => keys.len(),
            Node::Leaf { records, .. } => records.len(),
        }
    }

    /// Serialize into a `node_size` buffer.
    pub fn encode(&self, node_size: usize) -> Result<Vec<u8>> {
        let mut buf = vec![0u8; node_size];
        match self {
            Node::Internal { keys, children } => {
                if keys.len() > internal_capacity(node_size) {
                    return Err(RumError::Corrupt(format!(
                        "internal node with {} keys exceeds capacity {}",
                        keys.len(),
                        internal_capacity(node_size)
                    )));
                }
                if children.len() != keys.len() + 1 {
                    return Err(RumError::Corrupt(format!(
                        "internal node: {} keys but {} children",
                        keys.len(),
                        children.len()
                    )));
                }
                buf[0] = TAG_INTERNAL;
                buf[2..4].copy_from_slice(&(keys.len() as u16).to_le_bytes());
                let cap = internal_capacity(node_size);
                for (i, k) in keys.iter().enumerate() {
                    let off = HEADER + i * 8;
                    buf[off..off + 8].copy_from_slice(&k.to_le_bytes());
                }
                let child_base = HEADER + cap * 8;
                for (i, c) in children.iter().enumerate() {
                    let off = child_base + i * 8;
                    buf[off..off + 8].copy_from_slice(&c.0.to_le_bytes());
                }
            }
            Node::Leaf { records, next } => {
                if records.len() > leaf_capacity(node_size) {
                    return Err(RumError::Corrupt(format!(
                        "leaf with {} records exceeds capacity {}",
                        records.len(),
                        leaf_capacity(node_size)
                    )));
                }
                buf[0] = TAG_LEAF;
                buf[2..4].copy_from_slice(&(records.len() as u16).to_le_bytes());
                buf[8..16].copy_from_slice(&next.0.to_le_bytes());
                for (i, r) in records.iter().enumerate() {
                    let off = LEAF_HEADER + i * RECORD_SIZE;
                    r.encode_into(&mut buf[off..off + RECORD_SIZE]);
                }
            }
        }
        Ok(buf)
    }

    /// Deserialize from a `node_size` buffer.
    ///
    /// Every field read is bounds-checked: a short or bit-damaged buffer
    /// (e.g. a page flipped behind a checksum seal) yields
    /// [`RumError::Corrupt`], never a panic and never garbage records.
    pub fn decode(buf: &[u8]) -> Result<Node> {
        let node_size = buf.len();
        if node_size < LEAF_HEADER {
            return Err(RumError::Corrupt(format!(
                "node buffer of {node_size} bytes is shorter than the \
                 {LEAF_HEADER}-byte header"
            )));
        }
        let count = u16::from_le_bytes([buf[2], buf[3]]) as usize;
        match buf[0] {
            TAG_INTERNAL => {
                let cap = internal_capacity(node_size);
                if count > cap {
                    return Err(RumError::Corrupt(format!(
                        "internal count {count} exceeds capacity {cap}"
                    )));
                }
                let mut keys = Vec::with_capacity(count);
                for i in 0..count {
                    keys.push(read_u64(buf, HEADER + i * 8)?);
                }
                let child_base = HEADER + cap * 8;
                let mut children = Vec::with_capacity(count + 1);
                for i in 0..=count {
                    children.push(NodeId(read_u64(buf, child_base + i * 8)?));
                }
                Ok(Node::Internal { keys, children })
            }
            TAG_LEAF => {
                if count > leaf_capacity(node_size) {
                    return Err(RumError::Corrupt(format!(
                        "leaf count {count} exceeds capacity {}",
                        leaf_capacity(node_size)
                    )));
                }
                let next = NodeId(read_u64(buf, 8)?);
                let mut records = Vec::with_capacity(count);
                for i in 0..count {
                    let off = LEAF_HEADER + i * RECORD_SIZE;
                    let Some(bytes) = buf.get(off..off + RECORD_SIZE) else {
                        return Err(RumError::Corrupt(format!(
                            "leaf record {i} runs past the {node_size}-byte buffer"
                        )));
                    };
                    records.push(Record::decode(bytes));
                }
                Ok(Node::Leaf { records, next })
            }
            t => Err(RumError::Corrupt(format!("unknown node tag {t}"))),
        }
    }
}

/// Bounds-checked little-endian u64 field read.
fn read_u64(buf: &[u8], off: usize) -> Result<u64> {
    buf.get(off..off + 8)
        .and_then(|s| <[u8; 8]>::try_from(s).ok())
        .map(u64::from_le_bytes)
        .ok_or_else(|| {
            RumError::Corrupt(format!(
                "node field at offset {off} runs past the {}-byte buffer",
                buf.len()
            ))
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacities_at_page_size() {
        assert_eq!(internal_capacity(4096), 255);
        assert_eq!(leaf_capacity(4096), 255);
        // Sub-page and multi-page nodes.
        assert_eq!(leaf_capacity(512), 31);
        assert_eq!(leaf_capacity(16384), 1023);
    }

    #[test]
    fn leaf_roundtrip() {
        let n = Node::Leaf {
            records: (0..100).map(|k| Record::new(k, k * 3)).collect(),
            next: NodeId(42),
        };
        let buf = n.encode(4096).unwrap();
        assert_eq!(Node::decode(&buf).unwrap(), n);
    }

    #[test]
    fn internal_roundtrip() {
        let n = Node::Internal {
            keys: vec![10, 20, 30],
            children: vec![NodeId(1), NodeId(2), NodeId(3), NodeId(4)],
        };
        let buf = n.encode(4096).unwrap();
        assert_eq!(Node::decode(&buf).unwrap(), n);
    }

    #[test]
    fn roundtrip_at_odd_node_sizes() {
        for size in [256usize, 512, 1000, 4096, 8192] {
            let cap = leaf_capacity(size);
            let n = Node::Leaf {
                records: (0..cap as u64).map(|k| Record::new(k, k)).collect(),
                next: NodeId::INVALID,
            };
            let buf = n.encode(size).unwrap();
            assert_eq!(buf.len(), size);
            assert_eq!(Node::decode(&buf).unwrap(), n);

            let icap = internal_capacity(size);
            let n = Node::Internal {
                keys: (0..icap as u64).collect(),
                children: (0..=icap as u64).map(NodeId).collect(),
            };
            assert_eq!(Node::decode(&n.encode(size).unwrap()).unwrap(), n);
        }
    }

    #[test]
    fn overflow_is_rejected() {
        let n = Node::Leaf {
            records: (0..300).map(|k| Record::new(k, k)).collect(),
            next: NodeId::INVALID,
        };
        assert!(n.encode(4096).is_err());
    }

    #[test]
    fn mismatched_children_rejected() {
        let n = Node::Internal {
            keys: vec![1, 2],
            children: vec![NodeId(1), NodeId(2)], // should be 3
        };
        assert!(n.encode(4096).is_err());
    }

    #[test]
    fn garbage_tag_rejected() {
        let buf = vec![9u8; 4096];
        assert!(Node::decode(&buf).is_err());
    }

    #[test]
    fn short_or_garbled_buffers_error_instead_of_panicking() {
        // Truncated buffers at every length below the leaf header.
        for len in 0..LEAF_HEADER {
            let mut buf = vec![0u8; len];
            if len > 0 {
                buf[0] = TAG_LEAF;
            }
            assert!(Node::decode(&buf).is_err(), "len {len}");
        }
        // A bit-damaged count field claims more entries than fit.
        for tag in [TAG_INTERNAL, TAG_LEAF] {
            let mut buf = vec![0u8; 64];
            buf[0] = tag;
            buf[2..4].copy_from_slice(&u16::MAX.to_le_bytes());
            match Node::decode(&buf) {
                Err(RumError::Corrupt(_)) => {}
                other => panic!("tag {tag}: expected Corrupt, got {other:?}"),
            }
        }
    }

    #[test]
    fn empty_leaf_roundtrip() {
        let n = Node::empty_leaf();
        let buf = n.encode(256).unwrap();
        let d = Node::decode(&buf).unwrap();
        assert_eq!(d, n);
        assert_eq!(d.count(), 0);
        assert!(d.is_leaf());
    }
}
