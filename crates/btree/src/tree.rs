//! The B+-tree proper.

use std::sync::Arc;

use rum_core::{
    check_bulk_input, AccessMethod, CostTracker, DataClass, Key, Record, Result, RumError,
    SpaceProfile, Value,
};
use rum_storage::{BlockDevice, CheckedDevice, MemDevice, RetryPolicy, ScrubReport};

use crate::node::{internal_capacity, leaf_capacity, Node, NodeId};
use crate::store::NodeStore;

/// How a full node splits on insert — the "split condition" knob of §5.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SplitPolicy {
    /// Split in the middle: robust for random inserts.
    Half,
    /// If the insert lands at the far right of the node, keep the left node
    /// completely full and start a nearly-empty right node. Sequential
    /// ingest then packs leaves at ~100% instead of ~50%, trading MO for
    /// nothing — *if* the workload really is sequential.
    RightHeavy,
}

/// Tuning knobs (§5: "dynamically tuned parameters, including tree height,
/// node size, and split condition").
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BTreeConfig {
    /// Node size in bytes. May be less than a page (the slack is honest MO)
    /// or several pages (each node access charges them all).
    pub node_size: usize,
    /// Bulk-load fill factor in (0, 1]: lower leaves room for future
    /// inserts (fewer splits — lower UO) at the price of more nodes
    /// (higher MO and slightly higher RO).
    pub fill_factor: f64,
    pub split_policy: SplitPolicy,
}

impl Default for BTreeConfig {
    fn default() -> Self {
        BTreeConfig {
            node_size: rum_core::PAGE_SIZE,
            fill_factor: 1.0,
            split_policy: SplitPolicy::Half,
        }
    }
}

/// A clustered B+-tree over any block device.
pub struct BTree<D: BlockDevice = MemDevice> {
    store: NodeStore<D>,
    tracker: Arc<CostTracker>,
    config: BTreeConfig,
    root: NodeId,
    height: usize,
    len: usize,
}

impl BTree<MemDevice> {
    /// A tree with default configuration over a fresh in-memory device.
    pub fn new() -> Self {
        Self::with_config(BTreeConfig::default())
    }

    /// A tree with the given configuration over a fresh in-memory device.
    pub fn with_config(config: BTreeConfig) -> Self {
        Self::with_device(MemDevice::new(), config)
    }
}

impl Default for BTree<MemDevice> {
    fn default() -> Self {
        Self::new()
    }
}

impl<D: BlockDevice> BTree<D> {
    /// A tree over a caller-supplied device (e.g. a
    /// [`MemoryHierarchy`](rum_storage::MemoryHierarchy) for the Figure 2
    /// experiment).
    pub fn with_device(device: D, config: BTreeConfig) -> Self {
        assert!(
            (0.0..=1.0).contains(&config.fill_factor) && config.fill_factor > 0.0,
            "fill_factor must be in (0, 1]"
        );
        assert!(
            leaf_capacity(config.node_size) >= 2 && internal_capacity(config.node_size) >= 2,
            "node_size {} too small for a B-tree node",
            config.node_size
        );
        let tracker = CostTracker::new();
        let mut store = NodeStore::new(device, Arc::clone(&tracker), config.node_size);
        // Construction runs against a fresh, fault-free device: the fault
        // and checksum layers only start rejecting I/O after the tree is
        // built, so these first two page operations cannot fail unless the
        // device itself is broken at handoff.
        let root = store
            .allocate()
            .expect("a fresh device allocates the root leaf");
        store
            .write(root, DataClass::Base, &Node::empty_leaf())
            .expect("a fresh device stores the empty root leaf");
        tracker.reset(); // construction is not workload traffic
        BTree {
            store,
            tracker,
            config,
            root,
            height: 1,
            len: 0,
        }
    }

    pub fn config(&self) -> &BTreeConfig {
        &self.config
    }

    /// Rebind this tree's cost charges to `tracker` (used by composite
    /// structures — e.g. the partitioned B-tree — that aggregate several
    /// trees under one account).
    pub fn adopt_tracker(mut self, tracker: Arc<CostTracker>) -> Self {
        self.tracker = Arc::clone(&tracker);
        self.store.pager_mut().set_tracker(tracker);
        self
    }

    /// The underlying block device (e.g. to inspect per-level stats of a
    /// [`MemoryHierarchy`](rum_storage::MemoryHierarchy)).
    pub fn device(&self) -> &D {
        self.store.pager().device()
    }

    /// Mutable access to the underlying block device.
    pub fn device_mut(&mut self) -> &mut D {
        self.store.pager_mut().device_mut()
    }

    /// How transient device faults are retried on every node the tree
    /// touches (see [`RetryPolicy`]; the default retries 3 times with
    /// exponential backoff).
    pub fn set_retry_policy(&mut self, retry: RetryPolicy) {
        self.store.pager_mut().set_retry_policy(retry);
    }

    /// Tree height in levels (a lone leaf is height 1).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Number of nodes (leaves + internals).
    pub fn node_count(&self) -> usize {
        self.store.node_count()
    }

    fn leaf_cap(&self) -> usize {
        leaf_capacity(self.config.node_size)
    }

    fn internal_cap(&self) -> usize {
        internal_capacity(self.config.node_size)
    }

    /// Child slot covering `key` in an internal node.
    fn child_slot(keys: &[Key], key: Key) -> usize {
        keys.partition_point(|&k| k <= key)
    }

    /// Descend to the leaf covering `key`, returning the path of internal
    /// nodes `(id, keys, children, taken_slot)` and the leaf `(id, node)`.
    #[allow(clippy::type_complexity)]
    fn descend(
        &mut self,
        key: Key,
    ) -> Result<(
        Vec<(NodeId, Vec<Key>, Vec<NodeId>, usize)>,
        NodeId,
        Vec<Record>,
        NodeId,
    )> {
        let mut path = Vec::with_capacity(self.height);
        let mut cur = self.root;
        let mut depth = 0usize;
        loop {
            // Leaves (the last level) are base data in this clustered
            // organization; everything above is auxiliary.
            let class = if depth + 1 >= self.height {
                DataClass::Base
            } else {
                DataClass::Aux
            };
            match self.store.read(cur, class)? {
                Node::Internal { keys, children } => {
                    let slot = Self::child_slot(&keys, key);
                    let next = children[slot];
                    path.push((cur, keys, children, slot));
                    cur = next;
                    depth += 1;
                }
                Node::Leaf { records, next } => return Ok((path, cur, records, next)),
            }
        }
    }

    fn read_node(&mut self, id: NodeId, leaf_expected: bool) -> Result<Node> {
        let class = if leaf_expected {
            DataClass::Base
        } else {
            DataClass::Aux
        };
        self.store.read(id, class)
    }

    fn split_leaf(
        &mut self,
        records: Vec<Record>,
        next: NodeId,
        inserted_at_end: bool,
    ) -> Result<(Vec<Record>, NodeId, Key, Vec<Record>)> {
        let mid = match self.config.split_policy {
            SplitPolicy::RightHeavy if inserted_at_end => records.len() - 1,
            _ => records.len() / 2,
        };
        let right: Vec<Record> = records[mid..].to_vec();
        let left: Vec<Record> = records[..mid].to_vec();
        let sep = right[0].key;
        let right_id = self.store.allocate()?;
        self.store.write(
            right_id,
            DataClass::Base,
            &Node::Leaf {
                records: right.clone(),
                next,
            },
        )?;
        Ok((left, right_id, sep, right))
    }

    fn insert_inner(&mut self, key: Key, value: Value) -> Result<()> {
        let (mut path, leaf_id, mut records, next) = self.descend(key)?;
        match records.binary_search_by_key(&key, |r| r.key) {
            Ok(i) => {
                records[i].value = value;
                self.store
                    .write(leaf_id, DataClass::Base, &Node::Leaf { records, next })
            }
            Err(i) => {
                records.insert(i, Record::new(key, value));
                self.len += 1;
                let inserted_at_end = i == records.len() - 1;
                if records.len() <= self.leaf_cap() {
                    return self.store.write(
                        leaf_id,
                        DataClass::Base,
                        &Node::Leaf { records, next },
                    );
                }
                // Leaf split.
                let (left, right_id, sep, _right) =
                    self.split_leaf(records, next, inserted_at_end)?;
                self.store.write(
                    leaf_id,
                    DataClass::Base,
                    &Node::Leaf {
                        records: left,
                        next: right_id,
                    },
                )?;
                // Propagate the separator upward.
                let mut sep = sep;
                let mut new_child = right_id;
                while let Some((node_id, mut keys, mut children, slot)) = path.pop() {
                    keys.insert(slot, sep);
                    children.insert(slot + 1, new_child);
                    if keys.len() <= self.internal_cap() {
                        return self.store.write(
                            node_id,
                            DataClass::Aux,
                            &Node::Internal { keys, children },
                        );
                    }
                    // Internal split.
                    let mid = keys.len() / 2;
                    let promoted = keys[mid];
                    let right_keys: Vec<Key> = keys[mid + 1..].to_vec();
                    let right_children: Vec<NodeId> = children[mid + 1..].to_vec();
                    keys.truncate(mid);
                    children.truncate(mid + 1);
                    let right_internal = self.store.allocate()?;
                    self.store.write(
                        right_internal,
                        DataClass::Aux,
                        &Node::Internal {
                            keys: right_keys,
                            children: right_children,
                        },
                    )?;
                    self.store.write(
                        node_id,
                        DataClass::Aux,
                        &Node::Internal { keys, children },
                    )?;
                    sep = promoted;
                    new_child = right_internal;
                }
                // Root split: grow the tree.
                let new_root = self.store.allocate()?;
                self.store.write(
                    new_root,
                    DataClass::Aux,
                    &Node::Internal {
                        keys: vec![sep],
                        children: vec![self.root, new_child],
                    },
                )?;
                self.root = new_root;
                self.height += 1;
                Ok(())
            }
        }
    }
}

/// Walk every live node page behind the checksum seal (see
/// [`rum_storage::Pager::scrub`]): proactive detection of silent
/// corruption, charged as auxiliary reads.
impl<D: BlockDevice> BTree<CheckedDevice<D>> {
    pub fn scrub(&mut self) -> Result<ScrubReport> {
        self.store.pager_mut().scrub()
    }
}

impl<D: BlockDevice> AccessMethod for BTree<D> {
    fn name(&self) -> String {
        "b+tree".into()
    }

    /// Forward the sink to the pager so fault/retry/corruption events on
    /// node I/O are reported; installing a sink never changes a counted
    /// byte.
    fn set_trace_sink(&mut self, sink: Arc<dyn rum_core::trace::TraceSink>) {
        self.store.pager_mut().set_trace_sink(sink);
    }

    fn len(&self) -> usize {
        self.len
    }

    fn tracker(&self) -> &Arc<CostTracker> {
        &self.tracker
    }

    fn space_profile(&self) -> SpaceProfile {
        SpaceProfile::from_physical(self.len, self.store.physical_bytes())
    }

    fn get_impl(&mut self, key: Key) -> Result<Option<Value>> {
        let (_, _, records, _) = self.descend(key)?;
        Ok(records
            .binary_search_by_key(&key, |r| r.key)
            .ok()
            .map(|i| records[i].value))
    }

    fn range_impl(&mut self, lo: Key, hi: Key) -> Result<Vec<Record>> {
        if lo > hi {
            return Err(RumError::InvalidArgument(format!(
                "inverted range {lo}..{hi}"
            )));
        }
        let (_, _leaf_id, records, mut next) = self.descend(lo)?;
        let mut out = Vec::new();
        let start = records.partition_point(|r| r.key < lo);
        for r in &records[start..] {
            if r.key > hi {
                return Ok(out);
            }
            out.push(*r);
        }
        // Follow the leaf chain.
        while next.is_valid() {
            match self.read_node(next, true)? {
                Node::Leaf { records, next: n } => {
                    for r in &records {
                        if r.key > hi {
                            return Ok(out);
                        }
                        out.push(*r);
                    }
                    next = n;
                }
                Node::Internal { .. } => {
                    return Err(RumError::Corrupt("leaf chain points at internal".into()))
                }
            }
        }
        Ok(out)
    }

    fn insert_impl(&mut self, key: Key, value: Value) -> Result<()> {
        self.insert_inner(key, value)
    }

    fn update_impl(&mut self, key: Key, value: Value) -> Result<bool> {
        let (_, leaf_id, mut records, next) = self.descend(key)?;
        match records.binary_search_by_key(&key, |r| r.key) {
            Ok(i) => {
                records[i].value = value;
                self.store
                    .write(leaf_id, DataClass::Base, &Node::Leaf { records, next })?;
                Ok(true)
            }
            Err(_) => Ok(false),
        }
    }

    fn delete_impl(&mut self, key: Key) -> Result<bool> {
        // Lazy deletion: the record is removed in place; nodes are never
        // merged or freed (their slack shows up honestly in MO). Real
        // systems defer leaf consolidation the same way.
        let (_, leaf_id, mut records, next) = self.descend(key)?;
        match records.binary_search_by_key(&key, |r| r.key) {
            Ok(i) => {
                records.remove(i);
                self.len -= 1;
                self.store
                    .write(leaf_id, DataClass::Base, &Node::Leaf { records, next })?;
                Ok(true)
            }
            Err(_) => Ok(false),
        }
    }

    fn bulk_load_impl(&mut self, records: &[Record]) -> Result<()> {
        check_bulk_input(records)?;
        self.store.clear()?;
        self.len = records.len();

        if records.is_empty() {
            self.root = self.store.allocate()?;
            self.store
                .write(self.root, DataClass::Base, &Node::empty_leaf())?;
            self.height = 1;
            return Ok(());
        }

        // Pack leaves at the fill factor, left to right.
        let per_leaf =
            ((self.leaf_cap() as f64 * self.config.fill_factor) as usize).clamp(1, self.leaf_cap());
        let chunks: Vec<&[Record]> = records.chunks(per_leaf).collect();
        let leaf_ids: Vec<NodeId> = (0..chunks.len())
            .map(|_| self.store.allocate())
            .collect::<Result<_>>()?;
        let mut level: Vec<(Key, NodeId)> = Vec::with_capacity(chunks.len());
        for (i, chunk) in chunks.iter().enumerate() {
            let next = if i + 1 < leaf_ids.len() {
                leaf_ids[i + 1]
            } else {
                NodeId::INVALID
            };
            self.store.write(
                leaf_ids[i],
                DataClass::Base,
                &Node::Leaf {
                    records: chunk.to_vec(),
                    next,
                },
            )?;
            level.push((chunk[0].key, leaf_ids[i]));
        }

        // Build internal levels bottom-up.
        self.height = 1;
        let per_internal = ((self.internal_cap() as f64 * self.config.fill_factor) as usize)
            .clamp(2, self.internal_cap())
            + 1; // children per node
        while level.len() > 1 {
            let mut next_level = Vec::with_capacity(level.len() / 2 + 1);
            for group in level.chunks(per_internal) {
                let id = self.store.allocate()?;
                let keys: Vec<Key> = group[1..].iter().map(|&(k, _)| k).collect();
                let children: Vec<NodeId> = group.iter().map(|&(_, c)| c).collect();
                self.store
                    .write(id, DataClass::Aux, &Node::Internal { keys, children })?;
                next_level.push((group[0].0, id));
            }
            level = next_level;
            self.height += 1;
        }
        self.root = level[0].1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rum_core::RECORDS_PER_PAGE;

    fn loaded(n: u64) -> BTree {
        let recs: Vec<Record> = (0..n).map(|k| Record::new(k * 2, k)).collect();
        let mut t = BTree::new();
        t.bulk_load(&recs).unwrap();
        t
    }

    #[test]
    fn crud_roundtrip() {
        let mut t = BTree::new();
        for k in [5u64, 1, 9, 3, 7] {
            t.insert(k, k * 10).unwrap();
        }
        assert_eq!(t.len(), 5);
        assert_eq!(t.get(7).unwrap(), Some(70));
        assert_eq!(t.get(6).unwrap(), None);
        assert!(t.update(9, 99).unwrap());
        assert!(!t.update(999, 0).unwrap());
        assert_eq!(t.get(9).unwrap(), Some(99));
        assert!(t.delete(5).unwrap());
        assert!(!t.delete(5).unwrap());
        assert_eq!(t.get(5).unwrap(), None);
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn insert_is_upsert() {
        let mut t = BTree::new();
        t.insert(1, 1).unwrap();
        t.insert(1, 2).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(1).unwrap(), Some(2));
    }

    #[test]
    fn grows_and_splits_correctly() {
        let mut t = BTree::new();
        let n = 3 * RECORDS_PER_PAGE as u64; // forces leaf splits + a root split
        for k in 0..n {
            t.insert(k, k).unwrap();
        }
        assert!(t.height() >= 2);
        for k in 0..n {
            assert_eq!(t.get(k).unwrap(), Some(k), "key {k}");
        }
    }

    #[test]
    fn reverse_and_random_insert_orders() {
        use rand::{rngs::StdRng, seq::SliceRandom, SeedableRng};
        let n = 2000u64;
        for mode in 0..3 {
            let mut keys: Vec<u64> = (0..n).collect();
            match mode {
                0 => {}
                1 => keys.reverse(),
                _ => keys.shuffle(&mut StdRng::seed_from_u64(3)),
            }
            let mut t = BTree::new();
            for &k in &keys {
                t.insert(k, k + 1).unwrap();
            }
            assert_eq!(t.len(), n as usize);
            for k in 0..n {
                assert_eq!(t.get(k).unwrap(), Some(k + 1), "mode {mode} key {k}");
            }
        }
    }

    #[test]
    fn range_scan_follows_leaf_chain() {
        let mut t = loaded(2000); // keys 0,2,...,3998
        let rs = t.range(100, 140).unwrap();
        let keys: Vec<u64> = rs.iter().map(|r| r.key).collect();
        assert_eq!(keys, (100..=140).step_by(2).collect::<Vec<_>>());
        // Full scan.
        assert_eq!(t.range(0, u64::MAX).unwrap().len(), 2000);
        // Empty range.
        assert!(t.range(1, 1).unwrap().is_empty());
        // Inverted range errors.
        assert!(t.range(10, 5).is_err());
    }

    #[test]
    fn point_query_cost_is_height() {
        let mut t = loaded(64 * RECORDS_PER_PAGE as u64);
        let h = t.height() as u64;
        let before = t.tracker().snapshot();
        t.get(1234).unwrap();
        let reads = t.tracker().since(&before).page_reads;
        assert_eq!(reads, h, "one page per level");
    }

    #[test]
    fn point_query_cost_grows_logarithmically() {
        let probes = |n: u64| {
            let mut t = loaded(n);
            let before = t.tracker().snapshot();
            for k in [0u64, n / 2, n - 1] {
                t.get(k * 2).unwrap();
            }
            t.tracker().since(&before).page_reads as f64 / 3.0
        };
        let small = probes(1 << 10);
        let large = probes(1 << 17);
        // 128× more data costs only ~1 extra level.
        assert!(large - small <= 2.0, "small {small}, large {large}");
        assert!(large > small);
    }

    #[test]
    fn insert_cost_is_one_leaf_write_typically() {
        let mut t = loaded(32 * RECORDS_PER_PAGE as u64);
        // Odd keys don't exist yet; leaves are 100% full so the very first
        // insert splits, but a repeat insert into the fresh leaf does not.
        t.insert(101, 0).unwrap();
        let before = t.tracker().snapshot();
        t.insert(103, 0).unwrap();
        let d = t.tracker().since(&before);
        assert_eq!(d.page_writes, 1, "non-splitting insert writes one leaf");
    }

    #[test]
    fn bulk_load_with_fill_factor_leaves_slack() {
        let recs: Vec<Record> = (0..4096u64).map(|k| Record::new(k, k)).collect();
        let mut full = BTree::with_config(BTreeConfig {
            fill_factor: 1.0,
            ..Default::default()
        });
        full.bulk_load(&recs).unwrap();
        let mut half = BTree::with_config(BTreeConfig {
            fill_factor: 0.5,
            ..Default::default()
        });
        half.bulk_load(&recs).unwrap();
        assert!(half.node_count() > full.node_count());
        assert!(
            half.space_profile().space_amplification() > full.space_profile().space_amplification()
        );
        // Both still answer queries.
        assert_eq!(half.get(1000).unwrap(), Some(1000));
        assert_eq!(full.get(1000).unwrap(), Some(1000));
    }

    #[test]
    fn smaller_nodes_make_taller_trees() {
        let recs: Vec<Record> = (0..20_000u64).map(|k| Record::new(k, k)).collect();
        let mut small = BTree::with_config(BTreeConfig {
            node_size: 512,
            ..Default::default()
        });
        small.bulk_load(&recs).unwrap();
        let mut big = BTree::with_config(BTreeConfig {
            node_size: 16384,
            ..Default::default()
        });
        big.bulk_load(&recs).unwrap();
        assert!(small.height() > big.height());
        assert_eq!(small.get(777).unwrap(), Some(777));
        assert_eq!(big.get(777).unwrap(), Some(777));
    }

    #[test]
    fn right_heavy_split_packs_sequential_ingest() {
        let seq_mo = |policy: SplitPolicy| {
            let mut t = BTree::with_config(BTreeConfig {
                split_policy: policy,
                ..Default::default()
            });
            for k in 0..10_000u64 {
                t.insert(k, k).unwrap();
            }
            t.space_profile().space_amplification()
        };
        let half = seq_mo(SplitPolicy::Half);
        let right = seq_mo(SplitPolicy::RightHeavy);
        assert!(
            right < half * 0.75,
            "right-heavy ({right}) should pack much denser than half ({half})"
        );
    }

    #[test]
    fn model_check_random_ops() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(23);
        let mut t = BTree::with_config(BTreeConfig {
            node_size: 256, // tiny nodes stress splits
            ..Default::default()
        });
        let mut model = std::collections::BTreeMap::new();
        for step in 0..6000u64 {
            let k = rng.gen_range(0..2000u64);
            match rng.gen_range(0..5) {
                0 | 1 => {
                    t.insert(k, step).unwrap();
                    model.insert(k, step);
                }
                2 => {
                    assert_eq!(t.update(k, step).unwrap(), model.contains_key(&k));
                    model.entry(k).and_modify(|v| *v = step);
                }
                3 => {
                    assert_eq!(t.delete(k).unwrap(), model.remove(&k).is_some());
                }
                _ => {
                    assert_eq!(t.get(k).unwrap(), model.get(&k).copied(), "step {step}");
                }
            }
            assert_eq!(t.len(), model.len());
        }
        // Final full-range comparison.
        let all = t.range(0, u64::MAX).unwrap();
        let expect: Vec<Record> = model.iter().map(|(&k, &v)| Record::new(k, v)).collect();
        assert_eq!(all, expect);
    }

    #[test]
    fn empty_tree_behaves() {
        let mut t = BTree::new();
        assert_eq!(t.get(1).unwrap(), None);
        assert!(t.range(0, 10).unwrap().is_empty());
        assert!(!t.delete(1).unwrap());
        assert_eq!(t.len(), 0);
        t.bulk_load(&[]).unwrap();
        assert_eq!(t.get(1).unwrap(), None);
    }

    #[test]
    fn bulk_load_replaces_contents() {
        let mut t = loaded(100);
        let recs: Vec<Record> = (500..600u64).map(|k| Record::new(k, 1)).collect();
        t.bulk_load(&recs).unwrap();
        assert_eq!(t.len(), 100);
        assert_eq!(t.get(0).unwrap(), None);
        assert_eq!(t.get(550).unwrap(), Some(1));
    }

    #[test]
    fn works_over_a_memory_hierarchy() {
        use rum_storage::{HierarchySpec, MemoryHierarchy};
        let h = MemoryHierarchy::new(HierarchySpec::buffer_and_storage(
            8,
            rum_storage::DeviceProfile::SSD,
        ));
        let mut t = BTree::with_device(h, BTreeConfig::default());
        for k in 0..5000u64 {
            t.insert(k, k).unwrap();
        }
        for k in (0..5000u64).step_by(97) {
            assert_eq!(t.get(k).unwrap(), Some(k));
        }
    }
}
