//! The Partitioned B-tree (Graefe, CIDR 2003) — one of the paper's
//! write-optimized differential structures: "the Partitioned B-tree (PBT)
//! ... consolidate updates and apply them in bulk to the base data".
//!
//! Instead of one B-tree maintained in place, inserts fill a small
//! *active* partition (fast, shallow, hot in cache); sealed partitions
//! accumulate until a merge consolidates them into one. The partition
//! count is the knob ("the number of partitions in PBT" is one of the
//! paper's examples of a tunable RUM parameter): more partitions = cheaper
//! writes, more expensive reads.

use std::sync::Arc;

use rum_core::{
    check_bulk_input, AccessMethod, CostTracker, Key, Record, Result, SpaceProfile, Value,
};
use rum_storage::MemDevice;

use crate::tree::{BTree, BTreeConfig};

/// PBT tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct PbtConfig {
    /// Records in the active partition before it seals.
    pub partition_records: usize,
    /// Sealed + active partitions allowed before a full consolidation.
    pub max_partitions: usize,
    /// Node configuration shared by all partitions.
    pub node: BTreeConfig,
}

impl Default for PbtConfig {
    fn default() -> Self {
        PbtConfig {
            partition_records: 4096,
            max_partitions: 8,
            node: BTreeConfig::default(),
        }
    }
}

/// A partitioned B-tree: newest partition last.
pub struct PartitionedBTree {
    /// Consolidated + sealed partitions, oldest first; the last one is
    /// active (accepts inserts).
    partitions: Vec<BTree<MemDevice>>,
    config: PbtConfig,
    tracker: Arc<CostTracker>,
    /// Liveness oracle (uncharged; see the LSM's note): blind inserts
    /// shadow older copies, so `len` is not derivable from partition sizes.
    live: std::collections::HashSet<Key>,
    merges: u64,
}

impl PartitionedBTree {
    pub fn new() -> Self {
        Self::with_config(PbtConfig::default())
    }

    pub fn with_config(config: PbtConfig) -> Self {
        assert!(config.partition_records >= 16);
        assert!(config.max_partitions >= 2);
        let tracker = CostTracker::new();
        PartitionedBTree {
            partitions: vec![Self::fresh_tree(&config, &tracker)],
            config,
            tracker,
            live: std::collections::HashSet::new(),
            merges: 0,
        }
    }

    fn fresh_tree(config: &PbtConfig, tracker: &Arc<CostTracker>) -> BTree<MemDevice> {
        let tree = BTree::with_config(config.node);
        // Route the partition's charges into the shared tracker by
        // replacing its private one.
        tree.adopt_tracker(Arc::clone(tracker))
    }

    pub fn partition_count(&self) -> usize {
        self.partitions.len()
    }

    pub fn merges(&self) -> u64 {
        self.merges
    }

    /// Seal the active partition and open a new one; consolidate when the
    /// partition budget is exhausted.
    fn maybe_roll(&mut self) -> Result<()> {
        let active_len = self
            .partitions
            .last()
            .expect("a PBT keeps at least one active partition at all times")
            .len();
        if active_len < self.config.partition_records {
            return Ok(());
        }
        if self.partitions.len() + 1 > self.config.max_partitions {
            self.consolidate()?;
        }
        self.partitions
            .push(Self::fresh_tree(&self.config, &self.tracker));
        Ok(())
    }

    /// Merge every partition into one (newest copy of each key wins).
    fn consolidate(&mut self) -> Result<()> {
        let mut merged: std::collections::BTreeMap<Key, Value> = Default::default();
        // Oldest partition first, newer overwrite.
        let old = std::mem::take(&mut self.partitions);
        for mut part in old {
            for r in part.range(0, Key::MAX)? {
                merged.insert(r.key, r.value);
            }
        }
        let records: Vec<Record> = merged
            .into_iter()
            .filter(|(k, _)| self.live.contains(k))
            .map(|(k, v)| Record::new(k, v))
            .collect();
        let mut consolidated = Self::fresh_tree(&self.config, &self.tracker);
        consolidated.bulk_load_impl(&records)?;
        self.partitions = vec![consolidated];
        self.merges += 1;
        Ok(())
    }
}

impl Default for PartitionedBTree {
    fn default() -> Self {
        Self::new()
    }
}

impl AccessMethod for PartitionedBTree {
    fn name(&self) -> String {
        "partitioned-btree".into()
    }

    fn len(&self) -> usize {
        self.live.len()
    }

    fn tracker(&self) -> &Arc<CostTracker> {
        &self.tracker
    }

    fn space_profile(&self) -> SpaceProfile {
        let physical: u64 = self
            .partitions
            .iter()
            .map(|p| p.space_profile().total_bytes())
            .sum();
        SpaceProfile::from_physical(self.live.len(), physical)
    }

    fn get_impl(&mut self, key: Key) -> Result<Option<Value>> {
        if !self.live.contains(&key) {
            // Probing partitions for a dead key would still cost reads in a
            // real PBT; we charge the newest partition's probe to stay
            // honest about misses.
            if let Some(p) = self.partitions.last_mut() {
                p.get_impl(key)?;
            }
            return Ok(None);
        }
        // Newest partition first: the freshest copy wins.
        for p in self.partitions.iter_mut().rev() {
            if let Some(v) = p.get_impl(key)? {
                return Ok(Some(v));
            }
        }
        Ok(None)
    }

    fn range_impl(&mut self, lo: Key, hi: Key) -> Result<Vec<Record>> {
        // Oldest first; newer copies overwrite.
        let mut merged: std::collections::BTreeMap<Key, Value> = Default::default();
        for p in self.partitions.iter_mut() {
            for r in p.range_impl(lo, hi)? {
                merged.insert(r.key, r.value);
            }
        }
        Ok(merged
            .into_iter()
            .filter(|(k, _)| self.live.contains(k))
            .map(|(k, v)| Record::new(k, v))
            .collect())
    }

    fn insert_impl(&mut self, key: Key, value: Value) -> Result<()> {
        // Blind insert into the (small, shallow) active partition — the
        // whole point of the PBT. Older copies are shadowed until a merge.
        self.partitions
            .last_mut()
            .expect("a PBT keeps at least one active partition at all times")
            .insert_impl(key, value)?;
        self.live.insert(key);
        self.maybe_roll()
    }

    fn update_impl(&mut self, key: Key, value: Value) -> Result<bool> {
        if !self.live.contains(&key) {
            return Ok(false);
        }
        self.insert_impl(key, value)?;
        Ok(true)
    }

    fn delete_impl(&mut self, key: Key) -> Result<bool> {
        if !self.live.remove(&key) {
            return Ok(false);
        }
        // Remove the key from every partition that holds a copy (a PBT
        // deletes by anti-matter or eager removal; we do eager removal).
        for p in self.partitions.iter_mut() {
            p.delete_impl(key)?;
        }
        Ok(true)
    }

    fn bulk_load_impl(&mut self, records: &[Record]) -> Result<()> {
        check_bulk_input(records)?;
        let mut consolidated = Self::fresh_tree(&self.config, &self.tracker);
        consolidated.bulk_load_impl(records)?;
        self.partitions = vec![consolidated];
        self.live = records.iter().map(|r| r.key).collect();
        // A freshly loaded PBT still needs an empty active partition so
        // new inserts stay cheap.
        self.partitions
            .push(Self::fresh_tree(&self.config, &self.tracker));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> PbtConfig {
        PbtConfig {
            partition_records: 64,
            max_partitions: 4,
            node: BTreeConfig::default(),
        }
    }

    #[test]
    fn crud_roundtrip() {
        let mut t = PartitionedBTree::with_config(small());
        for k in 0..500u64 {
            t.insert(k, k * 2).unwrap();
        }
        assert_eq!(t.len(), 500);
        assert_eq!(t.get(123).unwrap(), Some(246));
        assert_eq!(t.get(999).unwrap(), None);
        assert!(t.update(123, 1).unwrap());
        assert!(!t.update(9999, 0).unwrap());
        assert_eq!(t.get(123).unwrap(), Some(1));
        assert!(t.delete(123).unwrap());
        assert!(!t.delete(123).unwrap());
        assert_eq!(t.get(123).unwrap(), None);
        assert_eq!(t.len(), 499);
    }

    #[test]
    fn partitions_roll_and_consolidate() {
        let mut t = PartitionedBTree::with_config(small());
        for k in 0..1000u64 {
            t.insert(k, k).unwrap();
        }
        assert!(t.merges() >= 1, "1000 inserts at 64/partition must merge");
        assert!(t.partition_count() <= 4);
        for k in (0..1000u64).step_by(97) {
            assert_eq!(t.get(k).unwrap(), Some(k));
        }
    }

    #[test]
    fn newest_copy_wins_across_partitions() {
        let mut t = PartitionedBTree::with_config(small());
        t.insert(7, 1).unwrap();
        // Roll the active partition by filling it.
        for k in 100..200u64 {
            t.insert(k, 0).unwrap();
        }
        t.insert(7, 2).unwrap(); // newer copy in a newer partition
        assert_eq!(t.get(7).unwrap(), Some(2));
        assert_eq!(t.range(7, 7).unwrap(), vec![Record::new(7, 2)]);
        // After consolidation the newest copy survives.
        for k in 200..600u64 {
            t.insert(k, 0).unwrap();
        }
        assert_eq!(t.get(7).unwrap(), Some(2));
    }

    #[test]
    fn inserts_are_cheaper_than_a_monolithic_btree() {
        let n = 20_000u64;
        let recs: Vec<Record> = (0..n).map(|k| Record::new(k * 2, k)).collect();

        let mut mono = BTree::new();
        mono.bulk_load(&recs).unwrap();
        mono.tracker().reset();
        let mut pbt = PartitionedBTree::with_config(PbtConfig::default());
        pbt.bulk_load(&recs).unwrap();
        pbt.tracker().reset();

        // Random-position odd-key inserts.
        for i in 0..2000u64 {
            let k = (i.wrapping_mul(7919) % n) * 2 + 1;
            mono.insert(k, 0).unwrap();
            pbt.insert(k, 0).unwrap();
        }
        let mono_writes = mono.tracker().snapshot().total_write_bytes();
        let pbt_writes = pbt.tracker().snapshot().total_write_bytes();
        assert!(
            pbt_writes < mono_writes,
            "PBT writes {pbt_writes} should undercut monolithic {mono_writes}"
        );
    }

    #[test]
    fn more_partitions_cost_more_reads() {
        let build = |max_partitions: usize| {
            let mut t = PartitionedBTree::with_config(PbtConfig {
                partition_records: 256,
                max_partitions,
                node: BTreeConfig::default(),
            });
            // Scattered inserts so partitions overlap.
            for i in 0..4000u64 {
                let k = i.wrapping_mul(7919) % 8000;
                t.insert(k, i).unwrap();
            }
            t.tracker().reset();
            for i in 0..500u64 {
                t.get(i.wrapping_mul(13) % 8000).unwrap();
            }
            t.tracker().snapshot().page_reads
        };
        let few = build(2);
        let many = build(16);
        assert!(
            many > few,
            "16 partitions ({many} reads) must out-read 2 ({few})"
        );
    }

    #[test]
    fn range_merges_partitions_correctly() {
        let mut t = PartitionedBTree::with_config(small());
        for k in (0..300u64).rev() {
            t.insert(k, k + 1).unwrap();
        }
        t.update(150, 99).unwrap();
        t.delete(151).unwrap();
        let rs = t.range(148, 153).unwrap();
        assert_eq!(
            rs,
            vec![
                Record::new(148, 149),
                Record::new(149, 150),
                Record::new(150, 99),
                Record::new(152, 153),
                Record::new(153, 154),
            ]
        );
    }

    #[test]
    fn model_check_random_ops() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(91);
        let mut t = PartitionedBTree::with_config(small());
        let mut model = std::collections::BTreeMap::new();
        for step in 0..4000u64 {
            let k = rng.gen_range(0..1200u64);
            match rng.gen_range(0..6) {
                0 | 1 => {
                    t.insert(k, step).unwrap();
                    model.insert(k, step);
                }
                2 => {
                    assert_eq!(t.update(k, step).unwrap(), model.contains_key(&k));
                    model.entry(k).and_modify(|v| *v = step);
                }
                3 => {
                    assert_eq!(t.delete(k).unwrap(), model.remove(&k).is_some());
                }
                4 => {
                    assert_eq!(t.get(k).unwrap(), model.get(&k).copied(), "step {step}");
                }
                _ => {
                    let hi = k + rng.gen_range(0..50u64);
                    let got = t.range(k, hi).unwrap();
                    let expect: Vec<Record> = model
                        .range(k..=hi)
                        .map(|(&k, &v)| Record::new(k, v))
                        .collect();
                    assert_eq!(got, expect, "range {k}..{hi} step {step}");
                }
            }
            assert_eq!(t.len(), model.len());
        }
    }
}
