//! Node storage: maps logical nodes onto one or more 4 KiB pages.
//!
//! A node of `node_size` bytes occupies `ceil(node_size / PAGE_SIZE)`
//! pages; every node access charges all of them — which is exactly how a
//! larger node buys fewer levels (lower RO in probes) at the price of more
//! bytes per touch (higher RO in bytes and higher UO per update). This is
//! the node-size axis of the paper's §5 tunable B-tree.

use std::collections::HashMap;
use std::sync::Arc;

use rum_core::{CostTracker, DataClass, Result, RumError, PAGE_SIZE};
use rum_storage::{BlockDevice, PageBuf, PageId, Pager};

use crate::node::{Node, NodeId};

/// Allocates, reads and writes nodes over a [`Pager`].
pub struct NodeStore<D: BlockDevice> {
    pager: Pager<D>,
    node_size: usize,
    pages_per_node: usize,
    directory: HashMap<NodeId, Vec<PageId>>,
    next_id: u64,
}

impl<D: BlockDevice> NodeStore<D> {
    pub fn new(device: D, tracker: Arc<CostTracker>, node_size: usize) -> Self {
        assert!(node_size >= 64, "node_size must be at least 64 bytes");
        NodeStore {
            pager: Pager::new(device, tracker),
            node_size,
            pages_per_node: node_size.div_ceil(PAGE_SIZE),
            directory: HashMap::new(),
            next_id: 0,
        }
    }

    pub fn node_size(&self) -> usize {
        self.node_size
    }

    pub fn pager(&self) -> &Pager<D> {
        &self.pager
    }

    pub fn pager_mut(&mut self) -> &mut Pager<D> {
        &mut self.pager
    }

    /// Number of live nodes.
    pub fn node_count(&self) -> usize {
        self.directory.len()
    }

    /// Physical bytes occupied (pages are the allocation unit, so sub-page
    /// nodes still burn whole pages — their slack is real MO).
    pub fn physical_bytes(&self) -> u64 {
        self.pager.physical_bytes() + self.directory_bytes()
    }

    /// In-memory directory overhead.
    pub fn directory_bytes(&self) -> u64 {
        (self.directory.len() * (8 + self.pages_per_node * 8)) as u64
    }

    /// Allocate an empty node.
    pub fn allocate(&mut self) -> Result<NodeId> {
        let id = NodeId(self.next_id);
        self.next_id += 1;
        let pages = (0..self.pages_per_node)
            .map(|_| self.pager.allocate())
            .collect::<Result<Vec<_>>>()?;
        self.directory.insert(id, pages);
        Ok(id)
    }

    /// Free a node and its pages.
    pub fn free(&mut self, id: NodeId) -> Result<()> {
        let pages = self
            .directory
            .remove(&id)
            .ok_or_else(|| RumError::Storage(format!("free of unknown node {id:?}")))?;
        for p in pages {
            self.pager.free(p)?;
        }
        Ok(())
    }

    /// Read and decode a node, charging `pages_per_node` page accesses of
    /// `class` traffic.
    pub fn read(&mut self, id: NodeId, class: DataClass) -> Result<Node> {
        let pages = self
            .directory
            .get(&id)
            .cloned()
            .ok_or_else(|| RumError::Storage(format!("read of unknown node {id:?}")))?;
        let mut buf = Vec::with_capacity(self.pages_per_node * PAGE_SIZE);
        for p in pages {
            let pg = self.pager.read(p, class)?;
            buf.extend_from_slice(&pg);
        }
        buf.truncate(self.node_size.max(PAGE_SIZE).min(buf.len()));
        // Sub-page nodes decode from the node_size prefix.
        Node::decode(&buf[..self.node_size.min(buf.len())])
    }

    /// Encode and write a node, charging `pages_per_node` page accesses.
    pub fn write(&mut self, id: NodeId, class: DataClass, node: &Node) -> Result<()> {
        let pages = self
            .directory
            .get(&id)
            .cloned()
            .ok_or_else(|| RumError::Storage(format!("write of unknown node {id:?}")))?;
        let mut buf = node.encode(self.node_size)?;
        buf.resize(self.pages_per_node * PAGE_SIZE, 0);
        for (i, p) in pages.iter().enumerate() {
            let page = PageBuf::from_bytes(&buf[i * PAGE_SIZE..(i + 1) * PAGE_SIZE]);
            self.pager.write(*p, class, &page)?;
        }
        Ok(())
    }

    /// Free every node (used by bulk load).
    pub fn clear(&mut self) -> Result<()> {
        let ids: Vec<NodeId> = self.directory.keys().copied().collect();
        for id in ids {
            self.free(id)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rum_core::Record;
    use rum_storage::MemDevice;

    fn store(node_size: usize) -> NodeStore<MemDevice> {
        NodeStore::new(MemDevice::new(), CostTracker::new(), node_size)
    }

    #[test]
    fn node_roundtrip_single_page() {
        let mut s = store(4096);
        let id = s.allocate().unwrap();
        let n = Node::Leaf {
            records: (0..50).map(|k| Record::new(k, k)).collect(),
            next: NodeId::INVALID,
        };
        s.write(id, DataClass::Base, &n).unwrap();
        assert_eq!(s.read(id, DataClass::Base).unwrap(), n);
    }

    #[test]
    fn node_roundtrip_multi_page() {
        let mut s = store(16384); // 4 pages per node
        let id = s.allocate().unwrap();
        let n = Node::Leaf {
            records: (0..1000).map(|k| Record::new(k, k * 7)).collect(),
            next: NodeId(3),
        };
        s.write(id, DataClass::Base, &n).unwrap();
        let before = s.pager().tracker().snapshot();
        assert_eq!(s.read(id, DataClass::Base).unwrap(), n);
        let d = s.pager().tracker().since(&before);
        assert_eq!(d.page_reads, 4, "multi-page node charges all its pages");
    }

    #[test]
    fn node_roundtrip_sub_page() {
        let mut s = store(512);
        let id = s.allocate().unwrap();
        let n = Node::Internal {
            keys: vec![5, 10],
            children: vec![NodeId(1), NodeId(2), NodeId(3)],
        };
        s.write(id, DataClass::Aux, &n).unwrap();
        assert_eq!(s.read(id, DataClass::Aux).unwrap(), n);
        // A sub-page node still burns a whole page.
        assert!(s.physical_bytes() >= 4096);
    }

    #[test]
    fn free_releases_pages() {
        let mut s = store(8192);
        let id = s.allocate().unwrap();
        assert_eq!(s.pager().live_pages(), 2);
        s.free(id).unwrap();
        assert_eq!(s.pager().live_pages(), 0);
        assert!(s.read(id, DataClass::Base).is_err());
        assert!(s.free(id).is_err());
    }

    #[test]
    fn clear_frees_everything() {
        let mut s = store(4096);
        for _ in 0..10 {
            s.allocate().unwrap();
        }
        assert_eq!(s.node_count(), 10);
        s.clear().unwrap();
        assert_eq!(s.node_count(), 0);
        assert_eq!(s.pager().live_pages(), 0);
    }
}
