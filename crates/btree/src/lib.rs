//! # rum-btree
//!
//! A paged, clustered B+-tree — the canonical *read-optimized* access
//! method (top corner of the paper's Figure 1, first row of its Table 1):
//!
//! * point query `O(log_B N)`,
//! * range query `O(log_B N + m/B)` via the leaf chain,
//! * insert/update/delete `O(log_B N)`,
//! * index size `O(N/B)` pages plus internal nodes.
//!
//! §5 of the paper asks for "B+-Trees that have dynamically tuned
//! parameters, including tree height, node size, and split condition, in
//! order to adjust the tree size, the read cost, and the update cost at
//! runtime"; [`BTreeConfig`] exposes exactly those knobs (node size in
//! bytes — possibly spanning several pages or a fraction of one —
//! bulk-load fill factor, and split policy), which is what traces the
//! B-tree's curve in the Figure 3 experiment.
//!
//! Leaves hold the records themselves (clustered primary organization) and
//! are charged as *base* data; internal nodes are *auxiliary* — matching
//! the paper's RO/MO definitions.

pub mod node;
pub mod pbt;
pub mod store;
pub mod tree;
pub mod tuning;

pub use node::{Node, NodeId};
pub use pbt::{PartitionedBTree, PbtConfig};
pub use tree::{BTree, BTreeConfig, SplitPolicy};
pub use tuning::{advise_btree, describe_btree, expected_cost_btree, retune_btree};
