//! Knob retuning for the B+-tree — §5's "dynamically tuned parameters,
//! including tree height, node size, and split condition", wired to the
//! [`Morphable`] face so the
//! [`AutoTuner`](rum_core::autotune::AutoTuner) can drive it.
//!
//! The knobs here trade RUM overheads exactly as the paper describes:
//! slack in the leaves (fill factor < 1) buys UO (fewer splits) with MO
//! (more nodes) and a sliver of RO; bigger nodes buy range RO (fewer
//! seeks per scanned record) with point RO (every probe drags the whole
//! node through the tracker).

use std::sync::Arc;

use rum_core::autotune::{MigrationReceipt, Morphable, RetuneEstimate};
use rum_core::wizard::{Environment, Family};
use rum_core::workload::OpMix;
use rum_core::{AccessMethod, Record, Result, PAGE_SIZE, RECORD_SIZE};

use crate::node::{internal_capacity, leaf_capacity};
use crate::tree::{BTree, BTreeConfig};

/// Recommend a configuration for an operation mix.
///
/// Write-leaning mixes get slack leaves (fill 0.7: splits become rare);
/// read- and scan-leaning mixes keep packed single-page nodes — in a
/// page-cost model that is already the read optimum (any slack inflates
/// both the scan length and the node count).
pub fn advise_btree(mix: &OpMix) -> BTreeConfig {
    let total = (mix.get + mix.insert + mix.update + mix.delete + mix.range).max(f64::EPSILON);
    let write_frac = (mix.insert + mix.update + mix.delete) / total;

    let mut cfg = BTreeConfig::default();
    if write_frac > 0.5 {
        cfg.fill_factor = 0.7;
    }
    cfg
}

/// Expected pages per operation for `cfg` under `mix` — the Table 1
/// B-tree row with the §5 knobs exposed. Deterministic and cheap.
pub fn expected_cost_btree(cfg: &BTreeConfig, mix: &OpMix, n: usize, m: usize) -> f64 {
    let pages_per_node = cfg.node_size.div_ceil(PAGE_SIZE) as f64;
    let cap = (leaf_capacity(cfg.node_size) as f64).max(2.0);
    let leaf_cap = (cap * cfg.fill_factor).max(2.0);
    let fanout = (internal_capacity(cfg.node_size) as f64).max(2.0);
    let leaves = (n.max(1) as f64 / leaf_cap).max(1.0);
    // Continuous height: the fractional part stands in for the partially
    // filled top level, so slack's extra leaves show up in read cost.
    let height = leaves.log(fanout).max(0.0) + 1.0;
    let point = height * pages_per_node;
    let range = point + (m as f64 / leaf_cap) * pages_per_node;
    // A split rewrites two nodes. After a bulk load at fill factor `f`
    // every leaf is a fraction `f` full, so the first insert epoch splits
    // with probability ~`f^4` (sharply rarer with slack); steady state
    // adds one split per half-capacity of inserts.
    let split_rate = cfg.fill_factor.clamp(0.0, 1.0).powi(4) + 2.0 / cap;
    let write = point + 2.0 * pages_per_node * split_rate + pages_per_node;
    // Space rent: slack and wide nodes are resident MO every operation
    // indirectly pays for (buffer pressure in a real system).
    let rent = 0.2 * pages_per_node / cfg.fill_factor.clamp(0.05, 1.0);
    let total = (mix.get + mix.insert + mix.update + mix.delete + mix.range).max(f64::EPSILON);
    (mix.get * point + mix.range * range + (mix.insert + mix.update + mix.delete) * write) / total
        + rent
}

/// One-line shape description for receipts and trace events.
pub fn describe_btree(cfg: &BTreeConfig) -> String {
    format!(
        "btree(node={},fill={},split={:?})",
        cfg.node_size, cfg.fill_factor, cfg.split_policy
    )
}

/// Drain-and-rebuild retune, priced: the receipt charges the drain and
/// rebuild I/O (booked on the tree's own tracker, so the runner's phase
/// accounting lands it in UO) and the transient double-residency as MO.
pub fn retune_btree(tree: &mut BTree, config: BTreeConfig) -> Result<MigrationReceipt> {
    let from = describe_btree(tree.config());
    let old_resident = tree.space_profile().total_bytes();
    let before = tree.tracker().snapshot();
    let all: Vec<Record> = tree.range_impl(0, u64::MAX)?;
    let buffer_bytes = (all.len() * RECORD_SIZE) as u64;
    let mut rebuilt = BTree::with_config(config).adopt_tracker(Arc::clone(tree.tracker()));
    rebuilt.bulk_load_impl(&all)?;
    *tree = rebuilt;
    let delta = tree.tracker().since(&before);
    Ok(MigrationReceipt {
        from,
        to: describe_btree(tree.config()),
        bytes_read: delta.total_read_bytes(),
        bytes_written: delta.total_write_bytes(),
        peak_extra_bytes: old_resident + buffer_bytes,
    })
}

impl Morphable for BTree {
    fn family(&self) -> Family {
        Family::BTree
    }

    fn shape(&self) -> String {
        describe_btree(self.config())
    }

    fn retune_gain(&mut self, mix: &OpMix, env: &Environment) -> Option<RetuneEstimate> {
        let advised = advise_btree(mix);
        if advised == *self.config() {
            return None;
        }
        let current_cost = expected_cost_btree(self.config(), mix, env.n, env.m);
        let advised_cost = expected_cost_btree(&advised, mix, env.n, env.m);
        if advised_cost >= current_cost {
            return None;
        }
        Some(RetuneEstimate {
            current_cost,
            advised_cost,
            advised_shape: describe_btree(&advised),
            bill_pages: None,
        })
    }

    fn morph_to(&mut self, family: Family, mix: &OpMix) -> Result<Option<MigrationReceipt>> {
        if family != Family::BTree {
            return Ok(None);
        }
        let advised = advise_btree(mix);
        if advised == *self.config() {
            return Ok(None);
        }
        retune_btree(self, advised).map(Some)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::SplitPolicy;

    #[test]
    fn advice_matches_the_knob_story() {
        assert_eq!(advise_btree(&OpMix::READ_HEAVY), BTreeConfig::default());
        // Packed single-page nodes are already the scan optimum here.
        assert_eq!(advise_btree(&OpMix::SCAN_HEAVY), BTreeConfig::default());
        let w = advise_btree(&OpMix::WRITE_HEAVY);
        assert!(w.fill_factor < 1.0, "write-heavy should leave slack");
        assert_eq!(w.split_policy, SplitPolicy::Half);
        assert_eq!(w.node_size, PAGE_SIZE);
    }

    #[test]
    fn expected_cost_prefers_each_advised_shape_on_its_own_mix() {
        let (n, m) = (1 << 20, 1024);
        let read_cfg = advise_btree(&OpMix::READ_HEAVY);
        let write_cfg = advise_btree(&OpMix::WRITE_HEAVY);
        let scan_cfg = advise_btree(&OpMix::SCAN_HEAVY);
        let at = |cfg: &BTreeConfig, mix: &OpMix| expected_cost_btree(cfg, mix, n, m);
        assert!(at(&write_cfg, &OpMix::WRITE_HEAVY) < at(&read_cfg, &OpMix::WRITE_HEAVY));
        assert!(at(&scan_cfg, &OpMix::SCAN_HEAVY) < at(&write_cfg, &OpMix::SCAN_HEAVY));
        assert!(at(&read_cfg, &OpMix::READ_HEAVY) <= at(&write_cfg, &OpMix::READ_HEAVY));
    }

    #[test]
    fn morph_retunes_knobs_in_place_and_keeps_contents() {
        let env = Environment {
            n: 4096,
            ..Default::default()
        };
        let mut t = BTree::new();
        for k in 0..4096u64 {
            t.insert(k * 2, k).unwrap();
        }
        // Already at the advised read shape: no gain, no work.
        assert!(t.retune_gain(&OpMix::READ_HEAVY, &env).is_none());
        assert!(t
            .morph_to(Family::BTree, &OpMix::READ_HEAVY)
            .unwrap()
            .is_none());
        // Write-heavy advice differs: priced morph, contents preserved,
        // tracker identity stable.
        let tracker = Arc::clone(t.tracker());
        assert!(t.retune_gain(&OpMix::WRITE_HEAVY, &env).is_some());
        let receipt = t
            .morph_to(Family::BTree, &OpMix::WRITE_HEAVY)
            .unwrap()
            .expect("morph should happen");
        assert!(receipt.bytes_read > 0 && receipt.bytes_written > 0);
        assert!(Arc::ptr_eq(&tracker, t.tracker()));
        assert_eq!(t.len(), 4096);
        assert_eq!(t.get(2468).unwrap(), Some(1234));
        assert!(t.config().fill_factor < 1.0);
        // Foreign families are declined.
        assert!(t
            .morph_to(Family::LsmTree, &OpMix::WRITE_HEAVY)
            .unwrap()
            .is_none());
    }
}
