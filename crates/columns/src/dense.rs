//! The dense array — Proposition 3 of the paper.
//!
//! "When minimizing MO, no auxiliary data is stored and the base data is
//! stored as a dense array. During a selection, we need to scan all data to
//! find the values we are interested in, while updates are performed in
//! place. The minimum MO = 1.0 is achieved. The RO, however, is now
//! dictated by the size of the relation since a full scan is needed in the
//! worst case. The UO cost of in-place updates is also optimal because only
//! the base data intended to be updated is ever updated."
//!
//! Accounting is byte-granular: MO must be *exactly* 1.0, which page slack
//! would spoil. (The page-based sibling is
//! [`UnsortedColumn`](crate::UnsortedColumn).)

use std::sync::Arc;

use rum_core::{
    check_bulk_input, AccessMethod, CostTracker, DataClass, Key, Record, Result, SpaceProfile,
    Value, RECORD_SIZE,
};

const CELL: u64 = RECORD_SIZE as u64;

/// Records packed contiguously with zero slack; no order, no index.
pub struct DenseArray {
    data: Vec<Record>,
    tracker: Arc<CostTracker>,
}

impl DenseArray {
    pub fn new() -> Self {
        DenseArray {
            data: Vec::new(),
            tracker: CostTracker::new(),
        }
    }

    /// Linear scan; charges the bytes examined up to (and including) the
    /// hit, or the whole array on a miss.
    fn find(&self, key: Key) -> Option<usize> {
        let pos = self.data.iter().position(|r| r.key == key);
        let examined = match pos {
            Some(i) => i + 1,
            None => self.data.len(),
        };
        self.tracker.read(DataClass::Base, examined as u64 * CELL);
        pos
    }
}

impl Default for DenseArray {
    fn default() -> Self {
        Self::new()
    }
}

impl AccessMethod for DenseArray {
    fn name(&self) -> String {
        "dense-array".into()
    }

    fn len(&self) -> usize {
        self.data.len()
    }

    fn tracker(&self) -> &Arc<CostTracker> {
        &self.tracker
    }

    fn space_profile(&self) -> SpaceProfile {
        // Exactly the live data, nothing else: MO = 1.0 by construction.
        SpaceProfile::from_physical(self.data.len(), self.data.len() as u64 * CELL)
    }

    fn get_impl(&mut self, key: Key) -> Result<Option<Value>> {
        Ok(self.find(key).map(|i| self.data[i].value))
    }

    fn range_impl(&mut self, lo: Key, hi: Key) -> Result<Vec<Record>> {
        // Full scan: every selection reads the whole relation.
        self.tracker
            .read(DataClass::Base, self.data.len() as u64 * CELL);
        let mut out: Vec<Record> = self
            .data
            .iter()
            .copied()
            .filter(|r| r.key >= lo && r.key <= hi)
            .collect();
        out.sort_unstable();
        Ok(out)
    }

    fn insert_impl(&mut self, key: Key, value: Value) -> Result<()> {
        match self.find(key) {
            Some(i) => {
                self.data[i].value = value;
                self.tracker.write(DataClass::Base, CELL);
            }
            None => {
                self.data.push(Record::new(key, value));
                self.tracker.write(DataClass::Base, CELL);
            }
        }
        Ok(())
    }

    fn update_impl(&mut self, key: Key, value: Value) -> Result<bool> {
        match self.find(key) {
            Some(i) => {
                self.data[i].value = value;
                self.tracker.write(DataClass::Base, CELL);
                Ok(true)
            }
            None => Ok(false),
        }
    }

    fn delete_impl(&mut self, key: Key) -> Result<bool> {
        match self.find(key) {
            Some(i) => {
                // Swap-remove keeps the array dense with one cell write.
                self.data.swap_remove(i);
                self.tracker.write(DataClass::Base, CELL);
                Ok(true)
            }
            None => Ok(false),
        }
    }

    fn bulk_load_impl(&mut self, records: &[Record]) -> Result<()> {
        check_bulk_input(records)?;
        self.data = records.to_vec();
        self.tracker
            .write(DataClass::Base, records.len() as u64 * CELL);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proposition_3_mo_is_exactly_one() {
        let mut a = DenseArray::new();
        for k in 0..1000u64 {
            a.insert(k, k).unwrap();
        }
        assert_eq!(a.space_profile().space_amplification(), 1.0);
    }

    #[test]
    fn proposition_3_uo_is_exactly_one_for_updates() {
        let mut a = DenseArray::new();
        for k in 0..100u64 {
            a.insert(k, 0).unwrap();
        }
        a.tracker().reset();
        for k in 0..100u64 {
            assert!(a.update(k, 1).unwrap());
        }
        let s = a.tracker().snapshot();
        assert_eq!(s.write_amplification(), 1.0, "in-place UO = 1.0");
    }

    #[test]
    fn proposition_3_ro_scales_with_n() {
        let cost_of_miss = |n: u64| {
            let mut a = DenseArray::new();
            let recs: Vec<Record> = (0..n).map(|k| Record::new(k, k)).collect();
            a.bulk_load(&recs).unwrap();
            a.tracker().reset();
            a.get(u64::MAX).unwrap();
            a.tracker().snapshot().total_read_bytes()
        };
        assert_eq!(cost_of_miss(1000), 1000 * CELL);
        assert_eq!(
            cost_of_miss(4000),
            4000 * CELL,
            "RO = N: linear in the relation"
        );
    }

    #[test]
    fn crud_roundtrip() {
        let mut a = DenseArray::new();
        a.insert(1, 10).unwrap();
        a.insert(2, 20).unwrap();
        a.insert(1, 11).unwrap(); // upsert
        assert_eq!(a.len(), 2);
        assert_eq!(a.get(1).unwrap(), Some(11));
        assert!(a.delete(1).unwrap());
        assert_eq!(a.get(1).unwrap(), None);
        assert!(!a.update(1, 0).unwrap());
    }

    #[test]
    fn range_is_sorted() {
        let mut a = DenseArray::new();
        for k in [5u64, 2, 8, 1] {
            a.insert(k, k).unwrap();
        }
        let rs = a.range(1, 6).unwrap();
        let keys: Vec<u64> = rs.iter().map(|r| r.key).collect();
        assert_eq!(keys, vec![1, 2, 5]);
    }

    #[test]
    fn early_hit_reads_less_than_late_hit() {
        let mut a = DenseArray::new();
        let recs: Vec<Record> = (0..1000u64).map(|k| Record::new(k, k)).collect();
        a.bulk_load(&recs).unwrap();
        a.tracker().reset();
        a.get(0).unwrap();
        let first = a.tracker().snapshot().total_read_bytes();
        a.tracker().reset();
        a.get(999).unwrap();
        let last = a.tracker().snapshot().total_read_bytes();
        assert!(first < last);
        assert_eq!(first, CELL);
        assert_eq!(last, 1000 * CELL);
    }
}
