//! The unsorted column (heap file) — Table 1's "Unsorted column" row:
//! O(1) bulk creation and inserts (append), O(N/B/2) expected point query,
//! O(N/B) range query (full scan), minimal space.
//!
//! This is the baseline organization the paper measures every access
//! method against: "when data is stored in a heap file without an index,
//! we have to perform costly scans to locate any data we are interested
//! in".

use std::sync::Arc;

use rum_core::{
    check_bulk_input, AccessMethod, CostTracker, Key, Record, Result, SpaceProfile, Value,
};
use rum_storage::{MemDevice, Pager};

use crate::packed::PackedFile;

/// A heap of packed pages; records appear in arrival order.
pub struct UnsortedColumn {
    file: PackedFile,
    pager: Pager<MemDevice>,
    tracker: Arc<CostTracker>,
    /// Blind-append mode: `insert` skips the uniqueness scan (the paper's
    /// O(1) heap append). The caller guarantees fresh keys.
    blind: bool,
}

impl UnsortedColumn {
    pub fn new() -> Self {
        let tracker = CostTracker::new();
        UnsortedColumn {
            file: PackedFile::new(),
            pager: Pager::new(MemDevice::new(), Arc::clone(&tracker)),
            tracker,
            blind: false,
        }
    }

    /// A column whose inserts are blind appends, matching the paper's
    /// O(1) heap-insert model. The caller must not insert duplicate keys
    /// (duplicates would shadow nondeterministically).
    pub fn blind_appends() -> Self {
        UnsortedColumn {
            blind: true,
            ..Self::new()
        }
    }

    /// Scan for `key`; returns its global index.
    fn find(&mut self, key: Key) -> Result<Option<usize>> {
        for page_idx in 0..self.file.num_pages() {
            let recs = self.file.read_page(&mut self.pager, page_idx)?;
            if let Some(slot) = recs.iter().position(|r| r.key == key) {
                return Ok(Some(page_idx * rum_core::RECORDS_PER_PAGE + slot));
            }
        }
        Ok(None)
    }
}

impl Default for UnsortedColumn {
    fn default() -> Self {
        Self::new()
    }
}

impl AccessMethod for UnsortedColumn {
    fn name(&self) -> String {
        "unsorted-column".into()
    }

    fn len(&self) -> usize {
        self.file.len()
    }

    fn tracker(&self) -> &Arc<CostTracker> {
        &self.tracker
    }

    fn space_profile(&self) -> SpaceProfile {
        let physical = self.pager.physical_bytes() + self.file.directory_bytes();
        SpaceProfile::from_physical(self.file.len(), physical)
    }

    fn get_impl(&mut self, key: Key) -> Result<Option<Value>> {
        match self.find(key)? {
            Some(idx) => Ok(Some(self.file.get(&mut self.pager, idx)?.value)),
            None => Ok(None),
        }
    }

    fn range_impl(&mut self, lo: Key, hi: Key) -> Result<Vec<Record>> {
        // Full scan, filter, sort — there is no order to exploit.
        let mut out: Vec<Record> = self
            .file
            .scan_all(&mut self.pager)?
            .into_iter()
            .filter(|r| r.key >= lo && r.key <= hi)
            .collect();
        out.sort_unstable();
        Ok(out)
    }

    fn insert_impl(&mut self, key: Key, value: Value) -> Result<()> {
        if self.blind {
            // The paper's heap append: O(1), no uniqueness scan.
            return self.file.push(&mut self.pager, Record::new(key, value));
        }
        // Upsert semantics require a scan to preserve key uniqueness.
        match self.find(key)? {
            Some(idx) => self.file.set(&mut self.pager, idx, Record::new(key, value)),
            None => self.file.push(&mut self.pager, Record::new(key, value)),
        }
    }

    fn update_impl(&mut self, key: Key, value: Value) -> Result<bool> {
        match self.find(key)? {
            Some(idx) => {
                self.file
                    .set(&mut self.pager, idx, Record::new(key, value))?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    fn delete_impl(&mut self, key: Key) -> Result<bool> {
        match self.find(key)? {
            Some(idx) => {
                // Swap-remove: move the tail record into the hole.
                let last = self.file.len() - 1;
                if idx != last {
                    let tail = self.file.get(&mut self.pager, last)?;
                    self.file.set(&mut self.pager, idx, tail)?;
                }
                self.file.pop(&mut self.pager)?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    fn bulk_load_impl(&mut self, records: &[Record]) -> Result<()> {
        check_bulk_input(records)?;
        self.file.rebuild(&mut self.pager, records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rum_core::RECORDS_PER_PAGE;

    fn loaded(n: u64) -> UnsortedColumn {
        let recs: Vec<Record> = (0..n).map(|k| Record::new(k, k * 2)).collect();
        let mut c = UnsortedColumn::new();
        c.bulk_load(&recs).unwrap();
        c
    }

    #[test]
    fn crud_roundtrip() {
        let mut c = UnsortedColumn::new();
        c.insert(5, 50).unwrap();
        c.insert(3, 30).unwrap();
        assert_eq!(c.get(5).unwrap(), Some(50));
        assert_eq!(c.get(4).unwrap(), None);
        assert!(c.update(5, 55).unwrap());
        assert_eq!(c.get(5).unwrap(), Some(55));
        assert!(c.delete(5).unwrap());
        assert!(!c.delete(5).unwrap());
        assert_eq!(c.get(5).unwrap(), None);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn insert_is_upsert() {
        let mut c = UnsortedColumn::new();
        c.insert(1, 10).unwrap();
        c.insert(1, 11).unwrap();
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(1).unwrap(), Some(11));
    }

    #[test]
    fn range_is_sorted_despite_heap_order() {
        let mut c = UnsortedColumn::new();
        for k in [9u64, 1, 7, 3, 5] {
            c.insert(k, k).unwrap();
        }
        let rs = c.range(2, 8).unwrap();
        let keys: Vec<u64> = rs.iter().map(|r| r.key).collect();
        assert_eq!(keys, vec![3, 5, 7]);
    }

    #[test]
    fn point_query_scans_half_on_average() {
        let n = 4 * RECORDS_PER_PAGE as u64; // 4 pages
        let mut c = loaded(n);
        let before = c.tracker().snapshot();
        // Key on the first page: 1 page read.
        c.get(0).unwrap();
        let first = c.tracker().since(&before).page_reads;
        assert_eq!(first, 1);
        let before = c.tracker().snapshot();
        // Key on the last page: the whole file is scanned (page 0 may be
        // memoized from the previous probe).
        c.get(n - 1).unwrap();
        let last = c.tracker().since(&before).page_reads;
        assert!((3..=4).contains(&last), "got {last}");
        assert!(last > first);
    }

    #[test]
    fn miss_scans_everything() {
        let mut c = loaded(4 * RECORDS_PER_PAGE as u64);
        let before = c.tracker().snapshot();
        assert_eq!(c.get(u64::MAX).unwrap(), None);
        assert_eq!(c.tracker().since(&before).page_reads, 4);
    }

    #[test]
    fn append_touches_only_tail_page() {
        let mut c = loaded(4 * RECORDS_PER_PAGE as u64 - 1);
        let before = c.tracker().snapshot();
        // A fresh key: the scan for upsert still reads all pages, but only
        // the tail page is written.
        c.insert(u64::MAX - 1, 0).unwrap();
        let d = c.tracker().since(&before);
        assert_eq!(d.page_writes, 1);
    }

    #[test]
    fn space_is_near_minimal() {
        let c = loaded(10 * RECORDS_PER_PAGE as u64);
        let mo = c.space_profile().space_amplification();
        assert!(mo < 1.01, "heap MO should be ~1, got {mo}");
    }

    #[test]
    fn delete_swaps_tail_into_hole() {
        let mut c = loaded(300);
        assert!(c.delete(0).unwrap());
        assert_eq!(c.len(), 299);
        // Every other key still reachable.
        assert_eq!(c.get(299).unwrap(), Some(598));
        assert_eq!(c.get(1).unwrap(), Some(2));
    }

    #[test]
    fn bulk_load_rejects_unsorted() {
        let mut c = UnsortedColumn::new();
        assert!(c
            .bulk_load(&[Record::new(2, 0), Record::new(1, 0)])
            .is_err());
    }
}
