//! The append-only log — Proposition 2 of the paper.
//!
//! "In order to minimize UO, we append every update, effectively forming an
//! ever increasing log. That way we achieve the minimum UO, which is equal
//! to 1.0, at the cost of continuously increasing RO and MO. ... for
//! minimum UO, both RO and MO perpetually increase as updates are
//! appended."
//!
//! Appends land in an in-memory tail buffer that is sealed to a page once
//! full, so the physical write per record is exactly one record's worth of
//! bytes amortized — UO → 1.0. Lookups scan the log newest-to-oldest;
//! deletes append a tombstone. Nothing is ever reclaimed: that is the
//! point.

use std::collections::HashSet;
use std::sync::Arc;

use rum_core::{
    check_bulk_input, AccessMethod, CostTracker, DataClass, Key, Record, Result, RumError,
    SpaceProfile, Value, RECORDS_PER_PAGE, RECORD_SIZE,
};
use rum_storage::{BlockDevice, MemDevice, PageBuf, PageId, Pager};

/// Value sentinel marking a tombstone entry. User values must avoid it.
pub const TOMBSTONE: Value = Value::MAX;

/// An ever-growing log of record versions.
pub struct AppendLog {
    /// Sealed pages, oldest first, with their record counts.
    sealed: Vec<(PageId, usize)>,
    /// In-memory tail buffer (the page being filled).
    tail: Vec<Record>,
    /// Liveness oracle: which keys currently resolve to a value. This is
    /// bookkeeping for `len()` and return values, *not* part of the
    /// structure — it is neither charged as traffic nor counted as space
    /// (the log itself has no index; that is its defining property).
    live: HashSet<Key>,
    pager: Pager<MemDevice>,
    tracker: Arc<CostTracker>,
}

impl AppendLog {
    pub fn new() -> Self {
        let tracker = CostTracker::new();
        AppendLog {
            sealed: Vec::new(),
            tail: Vec::new(),
            live: HashSet::new(),
            pager: Pager::new(MemDevice::new(), Arc::clone(&tracker)),
            tracker,
        }
    }

    /// Total versions ever appended (live + dead).
    pub fn total_entries(&self) -> usize {
        self.sealed.iter().map(|&(_, c)| c).sum::<usize>() + self.tail.len()
    }

    fn append(&mut self, rec: Record) -> Result<()> {
        // Appending into the tail buffer costs exactly the record's bytes.
        self.tracker.write(DataClass::Base, RECORD_SIZE as u64);
        self.tail.push(rec);
        if self.tail.len() == RECORDS_PER_PAGE {
            self.seal()?;
        }
        Ok(())
    }

    /// Write the tail buffer out as a sealed page. The page write is the
    /// physical materialization of bytes already charged at append time,
    /// so it charges the page access but not double byte traffic.
    fn seal(&mut self) -> Result<()> {
        if self.tail.is_empty() {
            return Ok(());
        }
        let id = self.pager.allocate()?;
        let mut buf = PageBuf::zeroed();
        for (i, r) in self.tail.iter().enumerate() {
            r.encode_into(&mut buf[i * RECORD_SIZE..(i + 1) * RECORD_SIZE]);
        }
        // Charge the page access directly on the device path, bypassing the
        // byte charge (Pager::write would double-count the bytes).
        self.pager.device_mut().write_page(id, &buf)?;
        self.tracker.page_write();
        self.sealed.push((id, self.tail.len()));
        self.tail.clear();
        Ok(())
    }

    fn read_sealed(&mut self, idx: usize) -> Result<Vec<Record>> {
        let (id, count) = self.sealed[idx];
        let buf = self.pager.read(id, DataClass::Base)?;
        Ok((0..count)
            .map(|i| Record::decode(&buf[i * RECORD_SIZE..(i + 1) * RECORD_SIZE]))
            .collect())
    }

    /// Newest-to-oldest search for the latest version of `key`.
    fn find_latest(&mut self, key: Key) -> Result<Option<Record>> {
        // Tail first (newest), scanned backward; charge the bytes examined.
        if let Some(pos) = self.tail.iter().rposition(|r| r.key == key) {
            self.tracker.read(
                DataClass::Base,
                ((self.tail.len() - pos) * RECORD_SIZE) as u64,
            );
            return Ok(Some(self.tail[pos]));
        }
        self.tracker
            .read(DataClass::Base, (self.tail.len() * RECORD_SIZE) as u64);
        for idx in (0..self.sealed.len()).rev() {
            let recs = self.read_sealed(idx)?;
            if let Some(r) = recs.iter().rev().find(|r| r.key == key) {
                return Ok(Some(*r));
            }
        }
        Ok(None)
    }
}

impl Default for AppendLog {
    fn default() -> Self {
        Self::new()
    }
}

impl AccessMethod for AppendLog {
    fn name(&self) -> String {
        "append-log".into()
    }

    fn len(&self) -> usize {
        self.live.len()
    }

    fn tracker(&self) -> &Arc<CostTracker> {
        &self.tracker
    }

    fn space_profile(&self) -> SpaceProfile {
        let physical = self.pager.physical_bytes() + (self.tail.len() * RECORD_SIZE) as u64;
        SpaceProfile::from_physical(self.live.len(), physical)
    }

    fn get_impl(&mut self, key: Key) -> Result<Option<Value>> {
        match self.find_latest(key)? {
            Some(r) if r.value != TOMBSTONE => Ok(Some(r.value)),
            _ => Ok(None),
        }
    }

    fn range_impl(&mut self, lo: Key, hi: Key) -> Result<Vec<Record>> {
        // Reconstruct the newest version of everything: full log scan.
        let mut newest: std::collections::HashMap<Key, Value> = std::collections::HashMap::new();
        for idx in 0..self.sealed.len() {
            for r in self.read_sealed(idx)? {
                newest.insert(r.key, r.value);
            }
        }
        self.tracker
            .read(DataClass::Base, (self.tail.len() * RECORD_SIZE) as u64);
        for r in &self.tail {
            newest.insert(r.key, r.value);
        }
        let mut out: Vec<Record> = newest
            .into_iter()
            .filter(|&(k, v)| k >= lo && k <= hi && v != TOMBSTONE)
            .map(|(k, v)| Record::new(k, v))
            .collect();
        out.sort_unstable();
        Ok(out)
    }

    fn insert_impl(&mut self, key: Key, value: Value) -> Result<()> {
        if value == TOMBSTONE {
            return Err(RumError::InvalidArgument(
                "value u64::MAX is reserved as the tombstone sentinel".into(),
            ));
        }
        self.append(Record::new(key, value))?;
        self.live.insert(key);
        Ok(())
    }

    fn update_impl(&mut self, key: Key, value: Value) -> Result<bool> {
        if value == TOMBSTONE {
            return Err(RumError::InvalidArgument(
                "value u64::MAX is reserved as the tombstone sentinel".into(),
            ));
        }
        if !self.live.contains(&key) {
            return Ok(false);
        }
        self.append(Record::new(key, value))?;
        Ok(true)
    }

    fn delete_impl(&mut self, key: Key) -> Result<bool> {
        if !self.live.contains(&key) {
            return Ok(false);
        }
        self.append(Record::new(key, TOMBSTONE))?;
        self.live.remove(&key);
        Ok(true)
    }

    fn bulk_load_impl(&mut self, records: &[Record]) -> Result<()> {
        check_bulk_input(records)?;
        for (id, _) in self.sealed.drain(..) {
            self.pager.free(id)?;
        }
        self.tail.clear();
        self.live.clear();
        for r in records {
            if r.value == TOMBSTONE {
                return Err(RumError::InvalidArgument(
                    "value u64::MAX is reserved as the tombstone sentinel".into(),
                ));
            }
            self.append(*r)?;
            self.live.insert(r.key);
        }
        Ok(())
    }

    fn flush(&mut self) -> Result<()> {
        self.seal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proposition_2_write_amplification_is_one() {
        let mut log = AppendLog::new();
        // Append a few pages' worth so page sealing is amortized.
        for k in 0..(4 * RECORDS_PER_PAGE as u64) {
            log.insert(k, k).unwrap();
        }
        let s = log.tracker().snapshot();
        assert!(
            (s.write_amplification() - 1.0).abs() < 1e-9,
            "min(UO) = 1.0, got {}",
            s.write_amplification()
        );
    }

    #[test]
    fn proposition_2_ro_grows_with_history() {
        let mut log = AppendLog::new();
        log.insert(0, 1).unwrap();
        // Pile up dead versions of *other* keys.
        for round in 0..8u64 {
            for k in 1..=(RECORDS_PER_PAGE as u64) {
                log.update_or_insert(k, round);
            }
        }
        // Reading key 0 (the oldest entry) must scan the whole history.
        log.tracker().reset();
        assert_eq!(log.get(0).unwrap(), Some(1));
        let ro1 = log.tracker().snapshot().read_amplification();
        // More history, strictly worse reads.
        for round in 8..16u64 {
            for k in 1..=(RECORDS_PER_PAGE as u64) {
                log.update_or_insert(k, round);
            }
        }
        log.tracker().reset();
        assert_eq!(log.get(0).unwrap(), Some(1));
        let ro2 = log.tracker().snapshot().read_amplification();
        assert!(ro2 > ro1, "RO must grow with the log: {ro1} -> {ro2}");
    }

    impl AppendLog {
        /// Test helper: upsert regardless of liveness.
        fn update_or_insert(&mut self, k: Key, v: Value) {
            if self.live.contains(&k) {
                self.update(k, v).unwrap();
            } else {
                self.insert(k, v).unwrap();
            }
        }
    }

    #[test]
    fn proposition_2_mo_grows_with_updates() {
        let mut log = AppendLog::new();
        for k in 0..256u64 {
            log.insert(k, 0).unwrap();
        }
        let mo1 = log.space_profile().space_amplification();
        for _ in 0..4 {
            for k in 0..256u64 {
                log.update(k, 1).unwrap();
            }
        }
        let mo2 = log.space_profile().space_amplification();
        assert!(
            mo2 > 3.0 * mo1,
            "MO must grow with dead versions: {mo1} -> {mo2}"
        );
        assert_eq!(log.len(), 256, "live count unchanged");
    }

    #[test]
    fn newest_version_wins() {
        let mut log = AppendLog::new();
        log.insert(7, 1).unwrap();
        log.update(7, 2).unwrap();
        log.update(7, 3).unwrap();
        assert_eq!(log.get(7).unwrap(), Some(3));
    }

    #[test]
    fn tombstone_hides_key() {
        let mut log = AppendLog::new();
        log.insert(7, 1).unwrap();
        assert!(log.delete(7).unwrap());
        assert_eq!(log.get(7).unwrap(), None);
        assert!(!log.delete(7).unwrap());
        assert_eq!(log.len(), 0);
        // Re-insert resurrects.
        log.insert(7, 9).unwrap();
        assert_eq!(log.get(7).unwrap(), Some(9));
    }

    #[test]
    fn tombstone_sentinel_is_rejected_as_value() {
        let mut log = AppendLog::new();
        assert!(log.insert(1, TOMBSTONE).is_err());
    }

    #[test]
    fn range_sees_latest_versions_only() {
        let mut log = AppendLog::new();
        for k in 0..10u64 {
            log.insert(k, k).unwrap();
        }
        log.update(3, 33).unwrap();
        log.delete(4).unwrap();
        let rs = log.range(2, 5).unwrap();
        assert_eq!(
            rs,
            vec![Record::new(2, 2), Record::new(3, 33), Record::new(5, 5)]
        );
    }

    #[test]
    fn versions_survive_page_sealing() {
        let mut log = AppendLog::new();
        let n = 3 * RECORDS_PER_PAGE as u64 + 17;
        for k in 0..n {
            log.insert(k, k * 2).unwrap();
        }
        assert_eq!(log.total_entries(), n as usize);
        assert_eq!(log.get(0).unwrap(), Some(0));
        assert_eq!(log.get(n - 1).unwrap(), Some((n - 1) * 2));
    }

    #[test]
    fn flush_seals_partial_tail() {
        let mut log = AppendLog::new();
        for k in 0..10u64 {
            log.insert(k, k).unwrap();
        }
        log.flush().unwrap();
        assert_eq!(log.total_entries(), 10);
        assert_eq!(log.get(5).unwrap(), Some(5));
        // A second flush is a no-op.
        log.flush().unwrap();
        assert_eq!(log.total_entries(), 10);
    }

    #[test]
    fn bulk_load_resets_history() {
        let mut log = AppendLog::new();
        for k in 0..100u64 {
            log.insert(k, 0).unwrap();
            log.update(k, 1).unwrap();
        }
        let recs: Vec<Record> = (0..50u64).map(|k| Record::new(k, k)).collect();
        log.bulk_load(&recs).unwrap();
        assert_eq!(log.len(), 50);
        assert_eq!(log.total_entries(), 50, "history reset by rebuild");
        assert_eq!(log.get(10).unwrap(), Some(10));
    }
}
