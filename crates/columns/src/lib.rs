//! # rum-columns
//!
//! Base-data organizations and the three extreme designs of §2 of the RUM
//! Conjecture paper.
//!
//! Table 1 of the paper observes that "the base data typically exist either
//! as a sorted column or as an unsorted column", and §2 derives the three
//! propositions from purpose-built extreme structures. This crate provides
//! all five:
//!
//! * [`UnsortedColumn`] — a heap of packed pages: O(1) appends, O(N/B)
//!   scans (Table 1's "Unsorted column" row).
//! * [`SortedColumn`] — packed sorted pages: O(log₂ N) search, O(N/B/2)
//!   inserts that shift half the column (Table 1's "Sorted column" row).
//! * [`DirectAddressArray`] — Proposition 1: `min(RO) = 1.0` at the price
//!   of `UO = 2.0` (for relocations) and unbounded MO.
//! * [`AppendLog`] — Proposition 2: `min(UO) = 1.0` while RO and MO grow
//!   without bound as versions accumulate.
//! * [`DenseArray`] — Proposition 3: `min(MO) = 1.0` with `RO = N` (full
//!   scans) and `UO = 1.0` (in-place updates).

pub mod dense;
pub mod direct;
pub mod log;
pub mod packed;
pub mod sorted;
pub mod unsorted;

pub use dense::DenseArray;
pub use direct::DirectAddressArray;
pub use log::AppendLog;
pub use sorted::SortedColumn;
pub use unsorted::UnsortedColumn;

/// A crash-consistent append log: mutations are write-ahead logged through
/// [`rum_storage::Durable`]. Deliberately ironic — a log in front of a log
/// — but it makes the *minimum-UO* design pay its durability tax like
/// everyone else, so Proposition 2's `UO → 1.0` becomes `1.0 + WAL`.
pub fn durable_log() -> rum_storage::Durable<AppendLog> {
    rum_storage::Durable::new(AppendLog::new)
}

/// [`durable_log`] with a [`FaultInjector`](rum_storage::FaultInjector)
/// armed on the WAL sync path (crash-matrix cells).
pub fn durable_log_with_injector(
    injector: std::sync::Arc<rum_storage::FaultInjector>,
) -> rum_storage::Durable<AppendLog> {
    rum_storage::Durable::with_injector(AppendLog::new, injector)
}
