//! A densely packed record file over pages — the shared physical layout of
//! [`SortedColumn`](crate::SortedColumn) and
//! [`UnsortedColumn`](crate::UnsortedColumn).
//!
//! Record `i` lives at page `i / B`, slot `i % B`. There is no per-page
//! header: the file's length lives in the in-memory directory, which is
//! deliberately tiny (8 bytes per page) and reported as auxiliary space by
//! the columns that use this layout.

use rum_core::{DataClass, Record, Result, RECORDS_PER_PAGE, RECORD_SIZE};
use rum_storage::{BlockDevice, PageBuf, PageId, Pager};

/// Directory + length of a packed record file.
#[derive(Debug, Default)]
pub struct PackedFile {
    pages: Vec<PageId>,
    len: usize,
    /// Memo of the page read most recently, so repeated probes into the
    /// same page during one binary search charge a single page access —
    /// any real implementation keeps the page it is searching in memory.
    last_read: Option<(usize, Vec<Record>)>,
}

impl PackedFile {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    pub fn num_pages(&self) -> usize {
        self.pages.len()
    }

    /// Bytes of in-memory directory metadata (auxiliary space).
    pub fn directory_bytes(&self) -> u64 {
        (self.pages.len() * std::mem::size_of::<PageId>()) as u64
    }

    fn invalidate(&mut self, page_idx: usize) {
        if matches!(self.last_read, Some((p, _)) if p == page_idx) {
            self.last_read = None;
        }
    }

    fn records_in_page(&self, page_idx: usize) -> usize {
        debug_assert!(page_idx < self.pages.len());
        if page_idx + 1 == self.pages.len() {
            let rem = self.len % RECORDS_PER_PAGE;
            if rem == 0 {
                RECORDS_PER_PAGE
            } else {
                rem
            }
        } else {
            RECORDS_PER_PAGE
        }
    }

    fn decode_page(buf: &PageBuf, count: usize) -> Vec<Record> {
        (0..count)
            .map(|i| Record::decode(&buf[i * RECORD_SIZE..(i + 1) * RECORD_SIZE]))
            .collect()
    }

    fn encode_page(records: &[Record]) -> PageBuf {
        debug_assert!(records.len() <= RECORDS_PER_PAGE);
        let mut buf = PageBuf::zeroed();
        for (i, r) in records.iter().enumerate() {
            r.encode_into(&mut buf[i * RECORD_SIZE..(i + 1) * RECORD_SIZE]);
        }
        buf
    }

    /// Read all records of page `page_idx`, charging one page access
    /// (unless it is the memoized page).
    pub fn read_page<D: BlockDevice>(
        &mut self,
        pager: &mut Pager<D>,
        page_idx: usize,
    ) -> Result<&[Record]> {
        let cached = matches!(self.last_read, Some((p, _)) if p == page_idx);
        if !cached {
            let buf = pager.read(self.pages[page_idx], DataClass::Base)?;
            let recs = Self::decode_page(&buf, self.records_in_page(page_idx));
            self.last_read = Some((page_idx, recs));
        }
        Ok(&self.last_read.as_ref().expect("just set").1)
    }

    /// Overwrite page `page_idx` with `records`, charging one page access.
    pub fn write_page<D: BlockDevice>(
        &mut self,
        pager: &mut Pager<D>,
        page_idx: usize,
        records: &[Record],
    ) -> Result<()> {
        self.invalidate(page_idx);
        let buf = Self::encode_page(records);
        pager.write(self.pages[page_idx], DataClass::Base, &buf)
    }

    /// Record at global index `idx` (one charged page read, memoized).
    pub fn get<D: BlockDevice>(&mut self, pager: &mut Pager<D>, idx: usize) -> Result<Record> {
        debug_assert!(idx < self.len);
        let page_idx = idx / RECORDS_PER_PAGE;
        let slot = idx % RECORDS_PER_PAGE;
        let recs = self.read_page(pager, page_idx)?;
        Ok(recs[slot])
    }

    /// Overwrite the record at `idx` (read-modify-write of its page).
    pub fn set<D: BlockDevice>(
        &mut self,
        pager: &mut Pager<D>,
        idx: usize,
        rec: Record,
    ) -> Result<()> {
        debug_assert!(idx < self.len);
        let page_idx = idx / RECORDS_PER_PAGE;
        let slot = idx % RECORDS_PER_PAGE;
        let mut recs = self.read_page(pager, page_idx)?.to_vec();
        recs[slot] = rec;
        self.write_page(pager, page_idx, &recs)
    }

    /// Append one record (read-modify-write of the tail page, allocating a
    /// fresh page at each page boundary).
    pub fn push<D: BlockDevice>(&mut self, pager: &mut Pager<D>, rec: Record) -> Result<()> {
        let slot = self.len % RECORDS_PER_PAGE;
        if slot == 0 {
            let id = pager.allocate()?;
            self.pages.push(id);
            self.len += 1;
            self.write_page(pager, self.pages.len() - 1, &[rec])
        } else {
            let page_idx = self.pages.len() - 1;
            let mut recs = self.read_page(pager, page_idx)?.to_vec();
            recs.push(rec);
            self.len += 1;
            self.write_page(pager, page_idx, &recs)
        }
    }

    /// Remove and return the last record.
    pub fn pop<D: BlockDevice>(&mut self, pager: &mut Pager<D>) -> Result<Option<Record>> {
        if self.len == 0 {
            return Ok(None);
        }
        let rec = self.get(pager, self.len - 1)?;
        self.len -= 1;
        // The memoized tail page still contains the popped record; drop it
        // so later reads re-decode with the new count.
        self.last_read = None;
        if self.len.is_multiple_of(RECORDS_PER_PAGE) {
            let id = self.pages.pop().expect("page exists for nonzero len");
            pager.free(id)?;
        }
        Ok(Some(rec))
    }

    /// Insert `rec` at global index `idx`, shifting everything after it one
    /// slot right. Page-wise ripple: each page from `idx / B` to the end is
    /// read once and written once — the O(N/B/2) average insert cost of
    /// Table 1's sorted column.
    pub fn insert_at<D: BlockDevice>(
        &mut self,
        pager: &mut Pager<D>,
        idx: usize,
        rec: Record,
    ) -> Result<()> {
        debug_assert!(idx <= self.len);
        if idx == self.len {
            return self.push(pager, rec);
        }
        let first_page = idx / RECORDS_PER_PAGE;
        let slot = idx % RECORDS_PER_PAGE;
        let old_pages = self.pages.len();

        let mut carry = rec;
        for page_idx in first_page..old_pages {
            let start_slot = if page_idx == first_page { slot } else { 0 };
            let mut recs = self.read_page(pager, page_idx)?.to_vec();
            recs.insert(start_slot, carry);
            if recs.len() > RECORDS_PER_PAGE {
                carry = recs.pop().expect("overflow record");
                self.write_page(pager, page_idx, &recs)?;
            } else {
                self.len += 1;
                self.write_page(pager, page_idx, &recs)?;
                return Ok(());
            }
        }
        // The carry overflowed past the old tail: start a fresh page.
        let id = pager.allocate()?;
        self.pages.push(id);
        self.len += 1;
        self.write_page(pager, self.pages.len() - 1, &[carry])
    }

    /// Remove the record at global index `idx`, shifting everything after
    /// it one slot left. Same page-wise ripple cost as
    /// [`insert_at`](Self::insert_at).
    pub fn remove_at<D: BlockDevice>(
        &mut self,
        pager: &mut Pager<D>,
        idx: usize,
    ) -> Result<Record> {
        debug_assert!(idx < self.len);
        let first_page = idx / RECORDS_PER_PAGE;
        let last_page = self.pages.len() - 1;
        let slot = idx % RECORDS_PER_PAGE;

        let mut removed: Option<Record> = None;
        // Walk pages from the tail toward the deletion point, carrying the
        // head record of each later page into the tail of the previous one.
        // Simpler equivalent: walk forward, pulling the first record of the
        // next page into the current page's tail.
        for page_idx in first_page..=last_page {
            let start_slot = if page_idx == first_page { slot } else { 0 };
            let mut recs = self.read_page(pager, page_idx)?.to_vec();
            if removed.is_none() {
                removed = Some(recs.remove(start_slot));
            } else {
                recs.remove(0);
            }
            if page_idx < last_page {
                let next_first = {
                    let next = self.read_page(pager, page_idx + 1)?;
                    next[0]
                };
                recs.push(next_first);
            }
            self.write_page(pager, page_idx, &recs)?;
        }
        self.len -= 1;
        if self.len.is_multiple_of(RECORDS_PER_PAGE) {
            if let Some(id) = self.pages.pop() {
                self.last_read = None;
                pager.free(id)?;
            }
        }
        Ok(removed.expect("idx < len guarantees a removal"))
    }

    /// Replace the file's contents with `records`, packed densely. Frees
    /// existing pages first. Charges one write per page.
    pub fn rebuild<D: BlockDevice>(
        &mut self,
        pager: &mut Pager<D>,
        records: &[Record],
    ) -> Result<()> {
        for id in self.pages.drain(..) {
            pager.free(id)?;
        }
        self.last_read = None;
        self.len = records.len();
        for chunk in records.chunks(RECORDS_PER_PAGE) {
            let id = pager.allocate()?;
            self.pages.push(id);
            let buf = Self::encode_page(chunk);
            pager.write(id, DataClass::Base, &buf)?;
        }
        Ok(())
    }

    /// Read the whole file into memory in order (one charged read per
    /// page) — the full scan primitive.
    pub fn scan_all<D: BlockDevice>(&mut self, pager: &mut Pager<D>) -> Result<Vec<Record>> {
        let mut out = Vec::with_capacity(self.len);
        for page_idx in 0..self.pages.len() {
            out.extend_from_slice(self.read_page(pager, page_idx)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rum_core::CostTracker;
    use rum_storage::MemDevice;

    fn setup() -> (PackedFile, Pager<MemDevice>) {
        (
            PackedFile::new(),
            Pager::new(MemDevice::new(), CostTracker::new()),
        )
    }

    fn rec(k: u64) -> Record {
        Record::new(k, k * 10)
    }

    #[test]
    fn push_get_roundtrip_across_pages() {
        let (mut f, mut p) = setup();
        for k in 0..600u64 {
            f.push(&mut p, rec(k)).unwrap();
        }
        assert_eq!(f.len(), 600);
        assert_eq!(f.num_pages(), 3);
        for k in [0u64, 255, 256, 511, 599] {
            assert_eq!(f.get(&mut p, k as usize).unwrap(), rec(k));
        }
    }

    #[test]
    fn set_overwrites_in_place() {
        let (mut f, mut p) = setup();
        for k in 0..300u64 {
            f.push(&mut p, rec(k)).unwrap();
        }
        f.set(&mut p, 257, Record::new(999, 1)).unwrap();
        assert_eq!(f.get(&mut p, 257).unwrap(), Record::new(999, 1));
        assert_eq!(f.len(), 300);
    }

    #[test]
    fn pop_shrinks_and_frees_pages() {
        let (mut f, mut p) = setup();
        for k in 0..257u64 {
            f.push(&mut p, rec(k)).unwrap();
        }
        assert_eq!(f.num_pages(), 2);
        assert_eq!(f.pop(&mut p).unwrap(), Some(rec(256)));
        assert_eq!(f.num_pages(), 1);
        assert_eq!(f.len(), 256);
        assert_eq!(p.live_pages(), 1);
    }

    #[test]
    fn pop_empty_is_none() {
        let (mut f, mut p) = setup();
        assert_eq!(f.pop(&mut p).unwrap(), None);
    }

    #[test]
    fn insert_at_shifts_right_across_pages() {
        let (mut f, mut p) = setup();
        for k in 0..512u64 {
            f.push(&mut p, rec(k * 2)).unwrap(); // 0,2,4,...
        }
        // Insert 101 between 100 and 102 (global idx 51).
        f.insert_at(&mut p, 51, Record::new(101, 0)).unwrap();
        assert_eq!(f.len(), 513);
        assert_eq!(f.get(&mut p, 50).unwrap().key, 100);
        assert_eq!(f.get(&mut p, 51).unwrap().key, 101);
        assert_eq!(f.get(&mut p, 52).unwrap().key, 102);
        // The very last record shifted into a new page.
        assert_eq!(f.get(&mut p, 512).unwrap().key, 1022);
        assert_eq!(f.num_pages(), 3);
    }

    #[test]
    fn insert_at_end_is_push() {
        let (mut f, mut p) = setup();
        f.insert_at(&mut p, 0, rec(1)).unwrap();
        f.insert_at(&mut p, 1, rec(2)).unwrap();
        assert_eq!(f.scan_all(&mut p).unwrap(), vec![rec(1), rec(2)]);
    }

    #[test]
    fn remove_at_shifts_left_across_pages() {
        let (mut f, mut p) = setup();
        for k in 0..600u64 {
            f.push(&mut p, rec(k)).unwrap();
        }
        let removed = f.remove_at(&mut p, 100).unwrap();
        assert_eq!(removed, rec(100));
        assert_eq!(f.len(), 599);
        assert_eq!(f.get(&mut p, 99).unwrap(), rec(99));
        assert_eq!(f.get(&mut p, 100).unwrap(), rec(101));
        assert_eq!(f.get(&mut p, 598).unwrap(), rec(599));
    }

    #[test]
    fn remove_last_record_frees_page() {
        let (mut f, mut p) = setup();
        f.push(&mut p, rec(1)).unwrap();
        let r = f.remove_at(&mut p, 0).unwrap();
        assert_eq!(r, rec(1));
        assert_eq!(f.num_pages(), 0);
        assert_eq!(p.live_pages(), 0);
    }

    #[test]
    fn rebuild_replaces_contents() {
        let (mut f, mut p) = setup();
        for k in 0..100u64 {
            f.push(&mut p, rec(k)).unwrap();
        }
        let new: Vec<Record> = (0..300u64).map(rec).collect();
        f.rebuild(&mut p, &new).unwrap();
        assert_eq!(f.len(), 300);
        assert_eq!(f.scan_all(&mut p).unwrap(), new);
        assert_eq!(p.live_pages(), 2, "old page freed, two new allocated");
    }

    #[test]
    fn repeated_probes_same_page_charge_once() {
        let (mut f, mut p) = setup();
        for k in 0..100u64 {
            f.push(&mut p, rec(k)).unwrap();
        }
        let before = p.tracker().snapshot();
        f.get(&mut p, 10).unwrap();
        f.get(&mut p, 20).unwrap();
        f.get(&mut p, 30).unwrap();
        let d = p.tracker().since(&before);
        assert_eq!(d.page_reads, 1, "all three probes hit the memoized page");
    }

    #[test]
    fn writes_invalidate_the_memo() {
        let (mut f, mut p) = setup();
        for k in 0..10u64 {
            f.push(&mut p, rec(k)).unwrap();
        }
        f.get(&mut p, 1).unwrap();
        f.set(&mut p, 2, Record::new(999, 9)).unwrap();
        // The memoized copy was refreshed or invalidated; read sees new data.
        assert_eq!(f.get(&mut p, 2).unwrap(), Record::new(999, 9));
    }

    #[test]
    fn model_check_random_ops() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let (mut f, mut p) = setup();
        let mut model: Vec<Record> = Vec::new();
        let mut rng = StdRng::seed_from_u64(5);
        for step in 0..2000u64 {
            match rng.gen_range(0..4) {
                0 => {
                    let idx = rng.gen_range(0..=model.len());
                    let r = rec(step);
                    model.insert(idx, r);
                    f.insert_at(&mut p, idx, r).unwrap();
                }
                1 if !model.is_empty() => {
                    let idx = rng.gen_range(0..model.len());
                    let a = model.remove(idx);
                    let b = f.remove_at(&mut p, idx).unwrap();
                    assert_eq!(a, b);
                }
                2 if !model.is_empty() => {
                    let idx = rng.gen_range(0..model.len());
                    model[idx] = rec(step + 1_000_000);
                    f.set(&mut p, idx, rec(step + 1_000_000)).unwrap();
                }
                _ => {
                    let r = rec(step);
                    model.push(r);
                    f.push(&mut p, r).unwrap();
                }
            }
            assert_eq!(f.len(), model.len());
        }
        assert_eq!(f.scan_all(&mut p).unwrap(), model);
    }
}
