//! The direct-address array — Proposition 1 of the paper.
//!
//! "In order to minimize RO we organize data in an array and we store each
//! value in the block with blkid = value. ... RO is now minimal because we
//! always know where to find a specific value (if it exists), and we only
//! read useful data. On the other hand, the array is sparsely populated,
//! with unbounded MO ... When we change a value we need to update two
//! blocks: empty the old block and insert the new value in its new block,
//! effectively increasing the worst case UO to two physical updates for one
//! logical update."
//!
//! We address slots by *key* (our records are key/value pairs rather than
//! bare values); [`relocate`](DirectAddressArray::relocate) is the paper's
//! "change a value" operation that moves a record between slots and incurs
//! the UO = 2.0 bound. Accounting is byte-granular: the whole point of this
//! structure is that a lookup touches exactly one record-sized cell.

use std::sync::Arc;

use rum_core::{
    check_bulk_input, AccessMethod, CostTracker, DataClass, Key, Record, Result, RumError,
    SpaceProfile, Value, RECORD_SIZE,
};

const CELL: u64 = RECORD_SIZE as u64;

/// One slot per key in `[0, universe)`; the universe grows to cover the
/// largest key ever inserted — that growth *is* the unbounded MO.
pub struct DirectAddressArray {
    slots: Vec<Option<Value>>,
    live: usize,
    tracker: Arc<CostTracker>,
    /// Hard cap on universe growth, to keep experiments from exhausting
    /// host memory; hitting it returns `CapacityExceeded`.
    max_universe: usize,
}

impl DirectAddressArray {
    pub fn new() -> Self {
        Self::with_max_universe(1 << 28)
    }

    /// Array that refuses to grow beyond `max_universe` slots.
    pub fn with_max_universe(max_universe: usize) -> Self {
        DirectAddressArray {
            slots: Vec::new(),
            live: 0,
            tracker: CostTracker::new(),
            max_universe,
        }
    }

    /// Slots currently allocated (the universe size).
    pub fn universe(&self) -> usize {
        self.slots.len()
    }

    fn ensure(&mut self, key: Key) -> Result<()> {
        let needed = key as usize + 1;
        if needed > self.max_universe {
            return Err(RumError::CapacityExceeded(format!(
                "key {key} exceeds max universe {}",
                self.max_universe
            )));
        }
        if needed > self.slots.len() {
            self.slots.resize(needed, None);
        }
        Ok(())
    }

    /// The paper's "change a value": move the record at `old_key` to
    /// `new_key`. Two physical cell writes (clear + set) for one logical
    /// update — UO = 2.0, the Proposition 1 bound.
    pub fn relocate(&mut self, old_key: Key, new_key: Key) -> Result<bool> {
        if old_key == new_key {
            return Ok(true);
        }
        self.tracker.read(DataClass::Base, CELL);
        let value = match self.slots.get(old_key as usize).copied().flatten() {
            Some(v) => v,
            None => return Ok(false),
        };
        self.ensure(new_key)?;
        if self.slots[new_key as usize].is_some() {
            return Err(RumError::DuplicateKey(new_key));
        }
        // Empty the old block...
        self.slots[old_key as usize] = None;
        self.tracker.write(DataClass::Base, CELL);
        // ...and insert the value in its new block.
        self.slots[new_key as usize] = Some(value);
        self.tracker.write(DataClass::Base, CELL);
        self.tracker.logical_write(CELL);
        Ok(true)
    }
}

impl Default for DirectAddressArray {
    fn default() -> Self {
        Self::new()
    }
}

impl AccessMethod for DirectAddressArray {
    fn name(&self) -> String {
        "direct-address-array".into()
    }

    fn len(&self) -> usize {
        self.live
    }

    fn tracker(&self) -> &Arc<CostTracker> {
        &self.tracker
    }

    fn space_profile(&self) -> SpaceProfile {
        // Every slot occupies a record-sized cell whether live or not.
        SpaceProfile::from_physical(self.live, self.slots.len() as u64 * CELL)
    }

    fn get_impl(&mut self, key: Key) -> Result<Option<Value>> {
        // Exactly one cell read — min(RO) = 1.0.
        let v = self.slots.get(key as usize).copied().flatten();
        if v.is_some() {
            self.tracker.read(DataClass::Base, CELL);
        }
        // A miss in a direct-address array reads nothing: slot emptiness is
        // knowable from the address alone in the paper's model.
        Ok(v)
    }

    fn range_impl(&mut self, lo: Key, hi: Key) -> Result<Vec<Record>> {
        let hi_clamped = (hi as usize).min(self.slots.len().saturating_sub(1));
        let mut out = Vec::new();
        if self.slots.is_empty() || lo as usize > hi_clamped {
            return Ok(out);
        }
        // Touch every slot in the range — sparse population is the cost.
        let touched = (hi_clamped - lo as usize + 1) as u64;
        self.tracker.read(DataClass::Base, touched * CELL);
        for k in lo as usize..=hi_clamped {
            if let Some(v) = self.slots[k] {
                out.push(Record::new(k as Key, v));
            }
        }
        Ok(out)
    }

    fn insert_impl(&mut self, key: Key, value: Value) -> Result<()> {
        self.ensure(key)?;
        if self.slots[key as usize].is_none() {
            self.live += 1;
        }
        self.slots[key as usize] = Some(value);
        self.tracker.write(DataClass::Base, CELL);
        Ok(())
    }

    fn update_impl(&mut self, key: Key, value: Value) -> Result<bool> {
        match self.slots.get_mut(key as usize) {
            Some(slot @ Some(_)) => {
                *slot = Some(value);
                self.tracker.write(DataClass::Base, CELL);
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    fn delete_impl(&mut self, key: Key) -> Result<bool> {
        match self.slots.get_mut(key as usize) {
            Some(slot @ Some(_)) => {
                *slot = None;
                self.live -= 1;
                self.tracker.write(DataClass::Base, CELL);
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    fn bulk_load_impl(&mut self, records: &[Record]) -> Result<()> {
        check_bulk_input(records)?;
        self.slots.clear();
        self.live = 0;
        if let Some(last) = records.last() {
            self.ensure(last.key)?;
        }
        for r in records {
            self.slots[r.key as usize] = Some(r.value);
            self.tracker.write(DataClass::Base, CELL);
        }
        self.live = records.len();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proposition_1_read_amplification_is_one() {
        let mut a = DirectAddressArray::new();
        a.insert(17, 1).unwrap();
        a.tracker().reset();
        assert_eq!(a.get(17).unwrap(), Some(1));
        let s = a.tracker().snapshot();
        assert_eq!(s.read_amplification(), 1.0, "min(RO) = 1.0");
    }

    #[test]
    fn proposition_1_relocation_write_amplification_is_two() {
        let mut a = DirectAddressArray::new();
        a.insert(1, 42).unwrap();
        a.tracker().reset();
        assert!(a.relocate(1, 17).unwrap());
        let s = a.tracker().snapshot();
        assert_eq!(s.write_amplification(), 2.0, "UO = 2.0 for a key change");
        assert_eq!(a.get(17).unwrap(), Some(42));
        assert_eq!(a.get(1).unwrap(), None);
    }

    #[test]
    fn proposition_1_mo_tracks_the_universe() {
        // The paper's example: the relation {1, 17} occupies 17 blocks.
        let mut a = DirectAddressArray::new();
        a.insert(1, 0).unwrap();
        a.insert(17, 0).unwrap();
        assert_eq!(a.universe(), 18);
        let mo = a.space_profile().space_amplification();
        assert_eq!(mo, 18.0 / 2.0, "MO = universe / live = 9");
    }

    #[test]
    fn mo_is_unbounded_in_the_max_key() {
        let mut a = DirectAddressArray::new();
        a.insert(1, 0).unwrap();
        let mo1 = a.space_profile().space_amplification();
        a.insert(100_000, 0).unwrap();
        let mo2 = a.space_profile().space_amplification();
        assert!(mo2 > 1000.0 * mo1 / 100.0, "{mo1} -> {mo2}");
    }

    #[test]
    fn capacity_cap_is_enforced() {
        let mut a = DirectAddressArray::with_max_universe(100);
        assert!(a.insert(99, 0).is_ok());
        assert!(matches!(
            a.insert(100, 0),
            Err(RumError::CapacityExceeded(_))
        ));
    }

    #[test]
    fn relocate_to_occupied_slot_errors() {
        let mut a = DirectAddressArray::new();
        a.insert(1, 10).unwrap();
        a.insert(2, 20).unwrap();
        assert!(matches!(a.relocate(1, 2), Err(RumError::DuplicateKey(2))));
    }

    #[test]
    fn relocate_missing_is_false() {
        let mut a = DirectAddressArray::new();
        a.insert(5, 0).unwrap();
        assert!(!a.relocate(3, 4).unwrap());
    }

    #[test]
    fn crud_and_range() {
        let mut a = DirectAddressArray::new();
        for k in [3u64, 7, 11] {
            a.insert(k, k * 100).unwrap();
        }
        assert!(a.update(7, 777).unwrap());
        assert!(!a.update(8, 0).unwrap());
        assert!(a.delete(3).unwrap());
        assert!(!a.delete(3).unwrap());
        let rs = a.range(0, 20).unwrap();
        assert_eq!(rs, vec![Record::new(7, 777), Record::new(11, 1100)]);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn bulk_load_populates_slots() {
        let recs: Vec<Record> = [2u64, 5, 9].iter().map(|&k| Record::new(k, k)).collect();
        let mut a = DirectAddressArray::new();
        a.bulk_load(&recs).unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a.universe(), 10);
        assert_eq!(a.get(5).unwrap(), Some(5));
    }
}
