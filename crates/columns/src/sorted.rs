//! The sorted column — Table 1's "Sorted column" row: O(log₂ N) point
//! queries without any auxiliary structure, at the price of O(N/B/2)
//! inserts and deletes (half the column shifts on average).
//!
//! "Even without an auxiliary data structure, adding structure to the data
//! affects read and write behavior" (§4): sortedness is free space-wise
//! (MO = 1) but is paid for on every insert.

use std::sync::Arc;

use rum_core::{
    check_bulk_input, AccessMethod, CostTracker, Key, Record, Result, SpaceProfile, Value,
    RECORDS_PER_PAGE,
};
use rum_storage::{MemDevice, Pager};

use crate::packed::PackedFile;

/// Packed pages kept globally sorted by key.
pub struct SortedColumn {
    file: PackedFile,
    pager: Pager<MemDevice>,
    tracker: Arc<CostTracker>,
}

impl SortedColumn {
    pub fn new() -> Self {
        let tracker = CostTracker::new();
        SortedColumn {
            file: PackedFile::new(),
            pager: Pager::new(MemDevice::new(), Arc::clone(&tracker)),
            tracker,
        }
    }

    /// Binary search over global record indices; each probe charges the
    /// page it lands on (the tail probes share the final page thanks to
    /// the packed file's one-page memo). Returns `Ok(idx)` for a hit and
    /// `Err(insertion_idx)` for a miss, like `slice::binary_search`.
    fn search(&mut self, key: Key) -> Result<std::result::Result<usize, usize>> {
        let mut lo = 0usize;
        let mut hi = self.file.len();
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let rec = self.file.get(&mut self.pager, mid)?;
            match rec.key.cmp(&key) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return Ok(Ok(mid)),
            }
        }
        Ok(Err(lo))
    }
}

impl Default for SortedColumn {
    fn default() -> Self {
        Self::new()
    }
}

impl AccessMethod for SortedColumn {
    fn name(&self) -> String {
        "sorted-column".into()
    }

    fn len(&self) -> usize {
        self.file.len()
    }

    fn tracker(&self) -> &Arc<CostTracker> {
        &self.tracker
    }

    fn space_profile(&self) -> SpaceProfile {
        let physical = self.pager.physical_bytes() + self.file.directory_bytes();
        SpaceProfile::from_physical(self.file.len(), physical)
    }

    fn get_impl(&mut self, key: Key) -> Result<Option<Value>> {
        match self.search(key)? {
            Ok(idx) => Ok(Some(self.file.get(&mut self.pager, idx)?.value)),
            Err(_) => Ok(None),
        }
    }

    fn range_impl(&mut self, lo: Key, hi: Key) -> Result<Vec<Record>> {
        let start = match self.search(lo)? {
            Ok(i) | Err(i) => i,
        };
        let mut out = Vec::new();
        let mut idx = start;
        // Sequential page reads from the start position.
        while idx < self.file.len() {
            let page_idx = idx / RECORDS_PER_PAGE;
            let slot = idx % RECORDS_PER_PAGE;
            let recs = self.file.read_page(&mut self.pager, page_idx)?;
            let mut done = false;
            for r in &recs[slot..] {
                if r.key > hi {
                    done = true;
                    break;
                }
                out.push(*r);
            }
            if done {
                break;
            }
            idx = (page_idx + 1) * RECORDS_PER_PAGE;
        }
        Ok(out)
    }

    fn insert_impl(&mut self, key: Key, value: Value) -> Result<()> {
        match self.search(key)? {
            Ok(idx) => self.file.set(&mut self.pager, idx, Record::new(key, value)),
            Err(idx) => self
                .file
                .insert_at(&mut self.pager, idx, Record::new(key, value)),
        }
    }

    fn update_impl(&mut self, key: Key, value: Value) -> Result<bool> {
        match self.search(key)? {
            Ok(idx) => {
                self.file
                    .set(&mut self.pager, idx, Record::new(key, value))?;
                Ok(true)
            }
            Err(_) => Ok(false),
        }
    }

    fn delete_impl(&mut self, key: Key) -> Result<bool> {
        match self.search(key)? {
            Ok(idx) => {
                self.file.remove_at(&mut self.pager, idx)?;
                Ok(true)
            }
            Err(_) => Ok(false),
        }
    }

    fn bulk_load_impl(&mut self, records: &[Record]) -> Result<()> {
        check_bulk_input(records)?;
        self.file.rebuild(&mut self.pager, records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loaded(n: u64) -> SortedColumn {
        let recs: Vec<Record> = (0..n).map(|k| Record::new(k * 2, k)).collect();
        let mut c = SortedColumn::new();
        c.bulk_load(&recs).unwrap();
        c
    }

    #[test]
    fn crud_roundtrip() {
        let mut c = SortedColumn::new();
        for k in [5u64, 1, 9, 3, 7] {
            c.insert(k, k * 10).unwrap();
        }
        assert_eq!(c.len(), 5);
        assert_eq!(c.get(7).unwrap(), Some(70));
        assert_eq!(c.get(8).unwrap(), None);
        assert!(c.update(9, 99).unwrap());
        assert_eq!(c.get(9).unwrap(), Some(99));
        assert!(c.delete(1).unwrap());
        assert_eq!(c.get(1).unwrap(), None);
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn stays_sorted_under_random_inserts() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(17);
        let mut c = SortedColumn::new();
        let mut model = std::collections::BTreeMap::new();
        for _ in 0..1500 {
            let k: u64 = rng.gen_range(0..10_000);
            let v: u64 = rng.gen();
            c.insert(k, v).unwrap();
            model.insert(k, v);
        }
        assert_eq!(c.len(), model.len());
        let all = c.range(0, u64::MAX).unwrap();
        let expect: Vec<Record> = model.iter().map(|(&k, &v)| Record::new(k, v)).collect();
        assert_eq!(all, expect);
    }

    #[test]
    fn range_returns_inclusive_sorted_slice() {
        let mut c = loaded(1000); // keys 0,2,...,1998
        let rs = c.range(10, 20).unwrap();
        let keys: Vec<u64> = rs.iter().map(|r| r.key).collect();
        assert_eq!(keys, vec![10, 12, 14, 16, 18, 20]);
    }

    #[test]
    fn point_query_is_logarithmic_in_pages() {
        // 64 pages => binary search should touch ≈ log2(64) + O(1) pages,
        // far fewer than a scan.
        let n = 64 * RECORDS_PER_PAGE as u64;
        let mut c = loaded(n);
        let before = c.tracker().snapshot();
        c.get(2 * (n / 3)).unwrap();
        let reads = c.tracker().since(&before).page_reads;
        assert!(reads <= 10, "expected ~log2(64)+2 page reads, got {reads}");
        assert!(reads >= 3);
    }

    #[test]
    fn insert_shifts_tail_pages() {
        let n = 16 * RECORDS_PER_PAGE as u64;
        let mut c = loaded(n);
        let before = c.tracker().snapshot();
        c.insert(1, 0).unwrap(); // lands near the front: nearly all pages shift
        let writes = c.tracker().since(&before).page_writes;
        assert!(
            writes >= 16,
            "front insert must rewrite ~all pages, got {writes}"
        );
        let before = c.tracker().snapshot();
        c.insert(u64::MAX, 0).unwrap(); // lands at the back: 1 page write
        let writes = c.tracker().since(&before).page_writes;
        assert!(
            writes <= 2,
            "back insert should touch the tail, got {writes}"
        );
    }

    #[test]
    fn update_in_place_is_cheap() {
        let mut c = loaded(16 * RECORDS_PER_PAGE as u64);
        let before = c.tracker().snapshot();
        assert!(c.update(100, 1).unwrap());
        let d = c.tracker().since(&before);
        assert_eq!(d.page_writes, 1, "in-place update writes one page");
    }

    #[test]
    fn mo_is_minimal() {
        let c = loaded(32 * RECORDS_PER_PAGE as u64);
        let mo = c.space_profile().space_amplification();
        assert!(mo < 1.01, "sorted column MO should be ~1, got {mo}");
    }

    #[test]
    fn range_across_page_boundaries() {
        let n = 4 * RECORDS_PER_PAGE as u64;
        let mut c = loaded(n);
        let lo = 2 * (RECORDS_PER_PAGE as u64) - 4; // near page 0/1 boundary
        let rs = c.range(lo, lo + 16).unwrap();
        assert_eq!(rs.len(), 9); // even keys only
        for w in rs.windows(2) {
            assert!(w[0].key < w[1].key);
        }
    }

    #[test]
    fn empty_column_behaves() {
        let mut c = SortedColumn::new();
        assert_eq!(c.get(1).unwrap(), None);
        assert!(c.range(0, 100).unwrap().is_empty());
        assert!(!c.delete(1).unwrap());
        assert!(!c.update(1, 1).unwrap());
    }
}
