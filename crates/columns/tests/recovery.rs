//! Crash/recovery tests for the WAL-wrapped append log (Proposition 2
//! paying its durability tax).

use rum_columns::{durable_log, durable_log_with_injector, AppendLog};
use rum_core::{AccessMethod, Key, Record, RumError};
use rum_storage::{FaultInjector, FaultPlan};

fn scan<M: AccessMethod>(m: &mut M) -> Vec<Record> {
    m.range(0, Key::MAX).unwrap()
}

#[test]
fn durable_log_recovers_losslessly() {
    let mut d = durable_log();
    for k in 0..300u64 {
        d.insert(k, k * 7).unwrap();
    }
    d.delete(5).unwrap();
    d.update(6, 1).unwrap();
    let before = scan(&mut d);
    let report = d.recover().unwrap();
    assert!(report.complete && !report.torn_tail);
    assert_eq!(report.committed_ops, 302);
    assert_eq!(scan(&mut d), before);
}

#[test]
fn seeded_crashes_recover_the_committed_prefix() {
    let mut reference = durable_log();
    for k in 0..150u64 {
        reference.insert(k, k).unwrap();
    }
    let total = reference.wal().synced_total();
    for seed in 100..110u64 {
        let plan = FaultPlan::seeded_crash(seed, total, seed % 2 == 0);
        let mut d = durable_log_with_injector(FaultInjector::new(plan));
        let mut committed = 0u64;
        for k in 0..150u64 {
            match d.insert(k, k) {
                Ok(()) => committed += 1,
                Err(RumError::Crash(_)) => break,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        let report = d.recover().unwrap();
        assert_eq!(report.committed_ops as u64, committed, "seed {seed}");
        let mut model = AppendLog::new();
        for k in 0..committed {
            model.insert(k, k).unwrap();
        }
        assert_eq!(scan(&mut d), scan(&mut model), "seed {seed}");
    }
}
