//! Property-based differential tests for the column organizations and the
//! §2 extreme designs.

use proptest::prelude::*;
use rum_columns::{AppendLog, DenseArray, DirectAddressArray, SortedColumn, UnsortedColumn};
use rum_core::{AccessMethod, Record};
use std::collections::BTreeMap;

#[derive(Clone, Debug)]
enum ColOp {
    Insert(u16, u32),
    Update(u16, u32),
    Delete(u16),
    Get(u16),
    Range(u16, u8),
}

fn op_strategy() -> impl Strategy<Value = ColOp> {
    prop_oneof![
        (any::<u16>(), any::<u32>()).prop_map(|(k, v)| ColOp::Insert(k, v)),
        (any::<u16>(), any::<u32>()).prop_map(|(k, v)| ColOp::Update(k, v)),
        any::<u16>().prop_map(ColOp::Delete),
        any::<u16>().prop_map(ColOp::Get),
        (any::<u16>(), any::<u8>()).prop_map(|(lo, s)| ColOp::Range(lo, s)),
    ]
}

fn run_against_model(method: &mut dyn AccessMethod, ops: &[ColOp]) {
    let name = method.name();
    let mut model: BTreeMap<u64, u64> = BTreeMap::new();
    for op in ops {
        match *op {
            ColOp::Insert(k, v) => {
                method.insert(k as u64, v as u64).unwrap();
                model.insert(k as u64, v as u64);
            }
            ColOp::Update(k, v) => {
                assert_eq!(
                    method.update(k as u64, v as u64).unwrap(),
                    model.contains_key(&(k as u64)),
                    "{name}"
                );
                model.entry(k as u64).and_modify(|x| *x = v as u64);
            }
            ColOp::Delete(k) => {
                assert_eq!(
                    method.delete(k as u64).unwrap(),
                    model.remove(&(k as u64)).is_some(),
                    "{name}"
                );
            }
            ColOp::Get(k) => {
                assert_eq!(
                    method.get(k as u64).unwrap(),
                    model.get(&(k as u64)).copied(),
                    "{name}"
                );
            }
            ColOp::Range(lo, span) => {
                let (lo, hi) = (lo as u64, lo as u64 + span as u64);
                let got = method.range(lo, hi).unwrap();
                let expect: Vec<Record> = model
                    .range(lo..=hi)
                    .map(|(&k, &v)| Record::new(k, v))
                    .collect();
                assert_eq!(got, expect, "{name}: range {lo}..={hi}");
            }
        }
        assert_eq!(method.len(), model.len(), "{name}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn sorted_column_matches_model(ops in proptest::collection::vec(op_strategy(), 1..150)) {
        run_against_model(&mut SortedColumn::new(), &ops);
    }

    #[test]
    fn unsorted_column_matches_model(ops in proptest::collection::vec(op_strategy(), 1..150)) {
        run_against_model(&mut UnsortedColumn::new(), &ops);
    }

    #[test]
    fn dense_array_matches_model(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        run_against_model(&mut DenseArray::new(), &ops);
    }

    #[test]
    fn append_log_matches_model(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        // The log reserves u64::MAX as the tombstone; u32 values avoid it.
        run_against_model(&mut AppendLog::new(), &ops);
    }

    #[test]
    fn direct_address_matches_model(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        run_against_model(&mut DirectAddressArray::new(), &ops);
    }

    #[test]
    fn dense_array_mo_is_always_exactly_one(
        ops in proptest::collection::vec(op_strategy(), 1..120)
    ) {
        let mut a = DenseArray::new();
        run_against_model(&mut a, &ops);
        if a.len() > 0 {
            prop_assert_eq!(a.space_profile().space_amplification(), 1.0);
        }
    }
}
