//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use — [`proptest!`], [`prop_assert!`], [`prop_assert_eq!`],
//! `prop_oneof!`, [`strategy::Strategy`] (ranges, tuples, `any`,
//! `prop_map`), and [`collection`] strategies (`vec`, `hash_set`,
//! `btree_set`) — on top of a deterministic seeded RNG.
//!
//! Differences from real proptest, deliberate for an offline shim:
//!
//! * **No shrinking.** A failing case reports the generated inputs and the
//!   case number; inputs are deterministic per (test name, case index), so
//!   failures reproduce exactly under `cargo test`.
//! * Case count comes from `ProptestConfig::with_cases` (default 48).

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Runner configuration. Only `cases` is honored.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 48 }
        }
    }

    /// The RNG handed to strategies: deterministic per (test, case).
    pub type TestRng = StdRng;

    /// FNV-1a so each test gets a distinct, stable seed stream.
    pub fn seed_for(test_path: &str, case: u64) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        StdRng::seed_from_u64(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A generator of values for one test argument.
    ///
    /// Object-safe core (`new_value`) plus `Sized`-gated combinators, so
    /// `Box<dyn Strategy<Value = V>>` works for `prop_oneof!`.
    pub trait Strategy {
        type Value: std::fmt::Debug;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values (no shrinking, so this is just `map`).
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            O: std::fmt::Debug,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    impl<V: std::fmt::Debug> Strategy for Box<dyn Strategy<Value = V>> {
        type Value = V;
        fn new_value(&self, rng: &mut TestRng) -> V {
            (**self).new_value(rng)
        }
    }

    /// Box a strategy for storage in heterogeneous collections
    /// (used by the `prop_oneof!` expansion).
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone + std::fmt::Debug>(pub T);

    impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        O: std::fmt::Debug,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// Weighted union of same-valued strategies (`prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>,
        total: u32,
    }

    impl<V: std::fmt::Debug> Union<V> {
        pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>) -> Self {
            let total = arms.iter().map(|(w, _)| *w).sum();
            assert!(total > 0, "prop_oneof! needs at least one weighted arm");
            Union { arms, total }
        }
    }

    impl<V: std::fmt::Debug> Strategy for Union<V> {
        type Value = V;
        fn new_value(&self, rng: &mut TestRng) -> V {
            let mut pick = rng.gen_range(0..self.total);
            for (w, s) in &self.arms {
                if pick < *w {
                    return s.new_value(rng);
                }
                pick -= w;
            }
            unreachable!("weights exhausted")
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn new_value(&self, rng: &mut TestRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    /// Full-domain strategy for a type: `any::<T>()`.
    pub struct Any<T>(core::marker::PhantomData<T>);

    pub fn any<T>() -> Any<T>
    where
        Any<T>: Strategy,
    {
        Any(core::marker::PhantomData)
    }

    macro_rules! impl_any {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.gen()
                }
            }
        )*};
    }
    impl_any!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::collections::{BTreeSet, HashSet};
    use std::hash::Hash;

    fn pick_len(size: &core::ops::Range<usize>, rng: &mut TestRng) -> usize {
        assert!(size.start < size.end, "collection size range is empty");
        rng.gen_range(size.clone())
    }

    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let len = pick_len(&self.size, rng);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// `Vec` of `size.start..size.end` elements.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    pub struct HashSetStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let target = pick_len(&self.size, rng);
            let mut out = HashSet::with_capacity(target);
            // Honor the minimum even through duplicate draws, within reason
            // (a narrow element domain can make the minimum unreachable).
            let mut attempts = 0usize;
            while out.len() < target && attempts < 16 * (target + 1) {
                out.insert(self.element.new_value(rng));
                attempts += 1;
            }
            out
        }
    }

    /// `HashSet` aiming for `size.start..size.end` distinct elements.
    pub fn hash_set<S>(element: S, size: core::ops::Range<usize>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        HashSetStrategy { element, size }
    }

    pub struct BTreeSetStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let target = pick_len(&self.size, rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < target && attempts < 16 * (target + 1) {
                out.insert(self.element.new_value(rng));
                attempts += 1;
            }
            out
        }
    }

    /// `BTreeSet` aiming for `size.start..size.end` distinct elements.
    pub fn btree_set<S>(element: S, size: core::ops::Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Assert inside a property test (panics; no shrinking to interrupt).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Weighted (`w => strategy`) or unweighted union of strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::boxed($strat))),+
        ])
    };
}

/// The proptest entry point: wraps `#[test]` functions whose arguments are
/// drawn from strategies. Each test runs `config.cases` deterministic
/// cases; on failure the generated inputs and case index are printed.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!(
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr) $(
        $(#[$meta:meta])+
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..config.cases as u64 {
                let mut rng = $crate::test_runner::seed_for(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                let mut inputs = String::new();
                $(
                    let value = $crate::strategy::Strategy::new_value(&($strat), &mut rng);
                    inputs.push_str(&format!(
                        "  {} = {:?}\n", stringify!($arg), value
                    ));
                    let $arg = value;
                )+
                let outcome = std::panic::catch_unwind(
                    std::panic::AssertUnwindSafe(|| $body),
                );
                if let Err(panic) = outcome {
                    eprintln!(
                        "proptest case {case}/{} of {} failed with inputs:\n{inputs}",
                        config.cases,
                        stringify!($name),
                    );
                    std::panic::resume_unwind(panic);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_tuples(x in 0u64..100, pair in (0u8..4, any::<bool>())) {
            prop_assert!(x < 100);
            prop_assert!(pair.0 < 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn collections_honor_bounds(
            v in crate::collection::vec(any::<u16>(), 1..20),
            s in crate::collection::btree_set(0u32..1000, 2..30),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(s.len() >= 2 && s.len() < 30);
        }
    }

    proptest! {
        #[test]
        fn oneof_and_map(op in prop_oneof![
            3 => (any::<u16>(), any::<u32>()).prop_map(|(k, v)| (0u8, k, v as u64)),
            1 => any::<u16>().prop_map(|k| (1u8, k, 0u64)),
        ]) {
            prop_assert!(op.0 <= 1);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        let s = crate::collection::vec(0u64..1000, 1..50);
        let mut a = crate::test_runner::seed_for("x", 3);
        let mut b = crate::test_runner::seed_for("x", 3);
        assert_eq!(s.new_value(&mut a), s.new_value(&mut b));
    }
}
