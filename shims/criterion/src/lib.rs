//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API subset the workspace's bench targets use so that
//! `cargo bench` (and the bench-target compilation `cargo test` performs)
//! works without crates.io access. Statistical sampling is replaced by a
//! single timed iteration per benchmark — enough to smoke-test every bench
//! path and print an order-of-magnitude number, not a rigorous measurement.

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Identifier for a parameterized benchmark.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{param}"),
        }
    }

    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The per-benchmark timing handle passed to closures.
#[derive(Default)]
pub struct Bencher {
    elapsed_ns: u128,
}

impl Bencher {
    /// Run the routine once and record its wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let started = Instant::now();
        black_box(routine());
        self.elapsed_ns = started.elapsed().as_nanos();
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sampling configuration is accepted and ignored (single iteration).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        println!(
            "{}/{id}: {} ns/iter (1 iteration, shim)",
            self.name, b.elapsed_ns
        );
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::default();
        f(&mut b, input);
        println!(
            "{}/{id}: {} ns/iter (1 iteration, shim)",
            self.name, b.elapsed_ns
        );
        self
    }

    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        println!("{id}: {} ns/iter (1 iteration, shim)", b.elapsed_ns);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` runs harness-less bench binaries with `--test`:
            // compile coverage is the point there, not timing.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}
