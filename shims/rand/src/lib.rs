//! Offline stand-in for the `rand` crate.
//!
//! This workspace builds in environments with no network access and no
//! crates.io mirror, so the external `rand` dependency is replaced by this
//! path crate exposing the exact API subset the workspace uses:
//!
//! * [`rngs::StdRng`] + [`SeedableRng::seed_from_u64`] — deterministic,
//!   seedable generation (xoshiro256++ seeded via SplitMix64),
//! * [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`],
//! * [`seq::SliceRandom::shuffle`] (Fisher–Yates).
//!
//! Streams differ from the real `rand` crate (different algorithm), but all
//! workspace consumers only require determinism-under-seed and reasonable
//! statistical quality, both of which xoshiro256++ provides.

/// Low-level generator interface: a source of uniform random bits.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Seed a generator from a single `u64` (SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of a [`Standard`]-distributed type: full-range
    /// integers, uniform `f64` in `[0, 1)`, or a fair `bool`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from a range (`lo..hi` or `lo..=hi`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types sampleable from their "natural" distribution by [`Rng::gen`].
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_u64(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX as u64 {
                    return rng.next_u64() as $t;
                }
                lo + uniform_u64(rng, span + 1) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_u64(rng, span + 1) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Uniform integer in `[0, span)` by widening multiply (Lemire's method
/// without the rejection loop; bias is < 2⁻⁶⁴·span, immaterial here).
#[inline]
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic generator: xoshiro256++ (Blackman & Vigna), seeded by
    /// SplitMix64 expansion of a `u64` — the standard seeding recipe.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice extensions: the workspace uses [`shuffle`](SliceRandom::shuffle).
    pub trait SliceRandom {
        type Item;

        /// Uniform Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: u64 = r.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: usize = r.gen_range(0..3);
            assert!(y < 3);
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn f64_is_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_tracks_p() {
        let mut r = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((hits as f64 / 100_000.0 - 0.3).abs() < 0.01);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut StdRng::seed_from_u64(5));
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "shuffle left the slice sorted");
    }
}
