//! The parallel harness's contract: `run_suite_parallel` produces exactly
//! the same reports as the serial `run_suite` — same methods, same order
//! (sorted by name), same costs and amplifications — with only the
//! wall-clock fields free to differ. Checked across a balanced mix, a
//! read-heavy mix, and a skewed (zipfian) stream.

use rum::prelude::*;

/// Every field of the two reports except the wall-clock ones must match
/// bit-for-bit.
fn assert_reports_identical(s: &RumReport, p: &RumReport) {
    let ctx = &s.method;
    assert_eq!(s.method, p.method);
    assert_eq!(s.n_final, p.n_final, "{ctx}: n_final");
    assert_eq!(s.read_ops, p.read_ops, "{ctx}: read_ops");
    assert_eq!(s.write_ops, p.write_ops, "{ctx}: write_ops");
    assert_eq!(s.read_costs, p.read_costs, "{ctx}: read_costs");
    assert_eq!(s.write_costs, p.write_costs, "{ctx}: write_costs");
    assert_eq!(s.load_costs, p.load_costs, "{ctx}: load_costs");
    assert_eq!(s.ro.to_bits(), p.ro.to_bits(), "{ctx}: ro");
    assert_eq!(s.uo.to_bits(), p.uo.to_bits(), "{ctx}: uo");
    assert_eq!(s.mo.to_bits(), p.mo.to_bits(), "{ctx}: mo");
    assert_eq!(
        s.pages_per_read_op.to_bits(),
        p.pages_per_read_op.to_bits(),
        "{ctx}: pages_per_read_op"
    );
    assert_eq!(
        s.pages_per_write_op.to_bits(),
        p.pages_per_write_op.to_bits(),
        "{ctx}: pages_per_write_op"
    );
    assert_eq!(s.sim_ns, p.sim_ns, "{ctx}: sim_ns");
    // And the rendered forms must therefore agree too — except the final
    // `ops_per_sec` column, the one deliberate wall-clock-derived value.
    assert_eq!(
        drop_last_column(&s.table_row(), ' '),
        drop_last_column(&p.table_row(), ' '),
        "{ctx}: table_row"
    );
    assert_eq!(
        drop_last_column(&s.csv_row(), ','),
        drop_last_column(&p.csv_row(), ','),
        "{ctx}: csv_row"
    );
}

/// Strip the trailing column (everything after the last separator), plus
/// any field padding left behind — ops/s is right-aligned, so the padding
/// width varies with the magnitude of the dropped number.
fn drop_last_column(row: &str, sep: char) -> &str {
    let trimmed = row.trim_end();
    trimmed
        .rsplit_once(sep)
        .map(|(head, _)| head.trim_end())
        .unwrap_or(trimmed)
}

#[test]
fn parallel_suite_reports_match_serial_bit_for_bit() {
    let specs = [
        WorkloadSpec {
            initial_records: 2048,
            operations: 2048,
            mix: OpMix::BALANCED,
            seed: 0xE0_45,
            ..Default::default()
        },
        WorkloadSpec {
            initial_records: 2048,
            operations: 2048,
            mix: OpMix::READ_HEAVY,
            seed: 17,
            ..Default::default()
        },
        WorkloadSpec {
            initial_records: 1024,
            operations: 3072,
            mix: OpMix::BALANCED,
            dist: KeyDist::Zipf { theta: 0.99 },
            seed: 23,
            ..Default::default()
        },
    ];
    for spec in specs {
        let workload = Workload::generate(&spec);
        let serial = run_suite(&mut rum::standard_suite(), &workload).expect("serial");
        // An awkward worker count (3) exercises the queue re-balancing;
        // default_threads() covers whatever the machine really has.
        for threads in [3, rum::core::runner::default_threads()] {
            let parallel = run_suite_with_threads(&mut rum::standard_suite(), &workload, threads)
                .expect("parallel");
            assert_eq!(serial.len(), parallel.len());
            for (s, p) in serial.iter().zip(&parallel) {
                assert_reports_identical(s, p);
            }
        }
    }
}
