//! The sharded executor's contract, pinned on real access methods:
//!
//! 1. `run_stream_sharded` (concurrent, batched, streaming) produces the
//!    same RO / UO / MO and cost snapshots as `run_workload` (serial,
//!    per-op, materialized) driving the *same* `ShardedMethod` — bit for
//!    bit, for every K. The cost model is deterministic; concurrency may
//!    only change wall-clock fields.
//! 2. A K=1 `ShardedMethod` is cost-transparent: it reports exactly what
//!    the bare inner method reports.
//!
//! Checked for a B-tree, an LSM-tree, and a sorted column — one
//! representative per RUM corner.

use rum::prelude::*;

type Factory = fn() -> Box<dyn AccessMethod>;

fn factories() -> Vec<(&'static str, Factory)> {
    vec![
        ("b+tree", || Box::new(rum::btree::BTree::new())),
        ("lsm-tree", || {
            Box::new(rum::lsm::LsmTree::with_config(rum::lsm::LsmConfig {
                memtable_records: 256,
                ..Default::default()
            }))
        }),
        ("sorted-column", || {
            Box::new(rum::columns::SortedColumn::new())
        }),
    ]
}

fn spec() -> WorkloadSpec {
    WorkloadSpec {
        initial_records: 3000,
        operations: 6000,
        mix: OpMix::BALANCED,
        seed: 0x5A_AD_ED,
        ..Default::default()
    }
}

fn assert_same_rum(ctx: &str, a: &RumReport, b: &RumReport) {
    assert_eq!(a.n_final, b.n_final, "{ctx}: n_final");
    assert_eq!(a.read_ops, b.read_ops, "{ctx}: read_ops");
    assert_eq!(a.write_ops, b.write_ops, "{ctx}: write_ops");
    assert_eq!(a.read_costs, b.read_costs, "{ctx}: read_costs");
    assert_eq!(a.write_costs, b.write_costs, "{ctx}: write_costs");
    assert_eq!(a.load_costs, b.load_costs, "{ctx}: load_costs");
    assert_eq!(a.ro.to_bits(), b.ro.to_bits(), "{ctx}: RO");
    assert_eq!(a.uo.to_bits(), b.uo.to_bits(), "{ctx}: UO");
    assert_eq!(a.mo.to_bits(), b.mo.to_bits(), "{ctx}: MO");
}

#[test]
fn concurrent_sharded_run_matches_serial_bit_for_bit() {
    let spec = spec();
    let workload = Workload::generate(&spec);
    for (name, factory) in factories() {
        for k in [1usize, 2, 4, 8] {
            // Serial reference: per-op execution over the materialized
            // workload, shards never run concurrently (threads = 1).
            let mut serial = rum::core::ShardedMethod::with_threads(k, 1, |_| factory());
            let s = run_workload(&mut serial, &workload).expect("serial run");

            // Concurrent: streamed ops, batched across k shard workers.
            let mut concurrent = rum::core::ShardedMethod::new(k, |_| factory());
            let c = run_stream_sharded(&mut concurrent, OpStream::new(&spec), 777)
                .expect("sharded stream run");

            assert_same_rum(&format!("{name} K={k}"), &s, &c);
        }
    }
}

#[test]
fn single_shard_wrapper_is_cost_transparent() {
    let spec = spec();
    let workload = Workload::generate(&spec);
    for (name, factory) in factories() {
        let mut bare = factory();
        let b = run_workload(bare.as_mut(), &workload).expect("bare run");
        let mut wrapped = rum::core::ShardedMethod::new(1, |_| factory());
        let w = run_workload(&mut wrapped, &workload).expect("wrapped run");
        assert_same_rum(&format!("{name} K=1 vs bare"), &b, &w);
    }
}
