//! The sharded executor's contract, pinned on real access methods:
//!
//! 1. `run_stream_sharded` (concurrent, batched, streaming, on the
//!    persistent worker pool) produces the same RO / UO / MO and cost
//!    snapshots as `run_workload` (serial, per-op, materialized) driving
//!    the *same* `ShardedMethod` — bit for bit, for every K, whether the
//!    pool is full-width or narrower than K (workers serving several
//!    shard queues). The cost model is deterministic; concurrency may
//!    only change wall-clock fields.
//! 2. A K=1 `ShardedMethod` is cost-transparent: it reports exactly what
//!    the bare inner method reports.
//! 3. The pool's failure semantics: a worker panic poisons exactly its
//!    shard (later batches on healthy shards still run), surfaces as
//!    `RumError::Corrupt`, and never leaks worker threads.
//!
//! Checked for a B-tree, an LSM-tree, and a sorted column — one
//! representative per RUM corner.

use rum::prelude::*;

type Factory = fn() -> Box<dyn AccessMethod>;

fn factories() -> Vec<(&'static str, Factory)> {
    vec![
        ("b+tree", || Box::new(rum::btree::BTree::new())),
        ("lsm-tree", || {
            Box::new(rum::lsm::LsmTree::with_config(rum::lsm::LsmConfig {
                memtable_records: 256,
                ..Default::default()
            }))
        }),
        ("sorted-column", || {
            Box::new(rum::columns::SortedColumn::new())
        }),
    ]
}

fn spec() -> WorkloadSpec {
    WorkloadSpec {
        initial_records: 3000,
        operations: 6000,
        mix: OpMix::BALANCED,
        seed: 0x5A_AD_ED,
        ..Default::default()
    }
}

fn assert_same_rum(ctx: &str, a: &RumReport, b: &RumReport) {
    assert_eq!(a.n_final, b.n_final, "{ctx}: n_final");
    assert_eq!(a.read_ops, b.read_ops, "{ctx}: read_ops");
    assert_eq!(a.write_ops, b.write_ops, "{ctx}: write_ops");
    assert_eq!(a.read_costs, b.read_costs, "{ctx}: read_costs");
    assert_eq!(a.write_costs, b.write_costs, "{ctx}: write_costs");
    assert_eq!(a.load_costs, b.load_costs, "{ctx}: load_costs");
    assert_eq!(a.ro.to_bits(), b.ro.to_bits(), "{ctx}: RO");
    assert_eq!(a.uo.to_bits(), b.uo.to_bits(), "{ctx}: UO");
    assert_eq!(a.mo.to_bits(), b.mo.to_bits(), "{ctx}: MO");
}

#[test]
fn concurrent_sharded_run_matches_serial_bit_for_bit() {
    let spec = spec();
    let workload = Workload::generate(&spec);
    for (name, factory) in factories() {
        for k in [1usize, 2, 4, 8] {
            // Serial reference: per-op execution over the materialized
            // workload, shards never run concurrently (threads = 1).
            let mut serial = rum::core::ShardedMethod::with_threads(k, 1, |_| factory());
            let s = run_workload(&mut serial, &workload).expect("serial run");

            // Pool widths are forced explicitly (`new` would follow the
            // host's core count): full width, and — where K allows it —
            // narrower than K, so one worker serves several shard queues.
            let mut widths = vec![k];
            if k > 3 {
                widths.push(3);
            }
            for threads in widths {
                // Concurrent: streamed ops, batched across the wrapper's
                // persistent worker pool.
                let mut concurrent =
                    rum::core::ShardedMethod::with_threads(k, threads, |_| factory());
                let c = run_stream_sharded(&mut concurrent, OpStream::new(&spec), 777)
                    .expect("sharded stream run");
                if threads > 1 && k > 1 {
                    assert!(
                        concurrent.pool_running(),
                        "{name} K={k} T={threads}: pool must be live after batches"
                    );
                }
                assert_same_rum(&format!("{name} K={k} T={threads}"), &s, &c);
            }
        }
    }
}

#[test]
fn traced_sharded_run_is_cost_identical_and_measures_latency() {
    // The traced variant fixes the permanently-zero p50/p99 columns on
    // the sharded path without perturbing a single counted byte.
    let spec = spec();
    let workload = Workload::generate(&spec);
    for (name, factory) in factories() {
        let mut serial = rum::core::ShardedMethod::with_threads(4, 1, |_| factory());
        let s = run_workload(&mut serial, &workload).expect("serial run");

        let mut concurrent = rum::core::ShardedMethod::with_threads(4, 2, |_| factory());
        let mut trace = TraceCollector::new(1024, noop_sink());
        let c = run_stream_sharded_traced(&mut concurrent, OpStream::new(&spec), 777, &mut trace)
            .expect("traced sharded run");
        assert_same_rum(&format!("{name} traced K=4 T=2"), &s, &c);
        assert!(c.p50_ns > 0, "{name}: sharded p50 must be measured");
        assert!(c.p99_ns >= c.p50_ns, "{name}");
        assert_eq!(
            trace.windowed_sum(),
            c.read_costs.add(&c.write_costs),
            "{name}: window deltas must sum byte-exactly to the op-phase totals"
        );
    }
}

#[test]
fn single_shard_wrapper_is_cost_transparent() {
    let spec = spec();
    let workload = Workload::generate(&spec);
    for (name, factory) in factories() {
        let mut bare = factory();
        let b = run_workload(bare.as_mut(), &workload).expect("bare run");
        let mut wrapped = rum::core::ShardedMethod::new(1, |_| factory());
        let w = run_workload(&mut wrapped, &workload).expect("wrapped run");
        assert_same_rum(&format!("{name} K=1 vs bare"), &b, &w);
    }
}

// ---- pool failure semantics ----------------------------------------------

/// A B-tree that panics when asked to insert one specific key — a stand-in
/// for a structure corrupting itself mid-mutation on a worker thread.
struct PanicOnKey {
    inner: rum::btree::BTree,
    trigger: Key,
}

impl AccessMethod for PanicOnKey {
    fn name(&self) -> String {
        "panic-on-key".into()
    }
    fn len(&self) -> usize {
        self.inner.len()
    }
    fn tracker(&self) -> &std::sync::Arc<CostTracker> {
        self.inner.tracker()
    }
    fn space_profile(&self) -> SpaceProfile {
        self.inner.space_profile()
    }
    fn get_impl(&mut self, key: Key) -> Result<Option<Value>> {
        self.inner.get_impl(key)
    }
    fn range_impl(&mut self, lo: Key, hi: Key) -> Result<Vec<Record>> {
        self.inner.range_impl(lo, hi)
    }
    fn insert_impl(&mut self, key: Key, value: Value) -> Result<()> {
        assert!(key != self.trigger, "tripwire key inserted");
        self.inner.insert_impl(key, value)
    }
    fn update_impl(&mut self, key: Key, value: Value) -> Result<bool> {
        self.inner.update_impl(key, value)
    }
    fn delete_impl(&mut self, key: Key) -> Result<bool> {
        self.inner.delete_impl(key)
    }
    fn bulk_load_impl(&mut self, records: &[Record]) -> Result<()> {
        self.inner.bulk_load_impl(records)
    }
}

#[test]
fn worker_panic_poisons_one_shard_and_spares_the_rest() {
    let trigger: Key = 0xBAD_F00D;
    let mut sharded = rum::core::ShardedMethod::with_threads(2, 2, |_| {
        Box::new(PanicOnKey {
            inner: rum::btree::BTree::new(),
            trigger,
        }) as Box<dyn AccessMethod>
    });
    let bad_shard = sharded.shard_of(trigger);
    // Deterministic keys routed to each side of the partition.
    let on_shard = |m: &rum::core::ShardedMethod, want: usize| -> Vec<Key> {
        (0..10_000u64)
            .filter(|&key| key != trigger && m.shard_of(key) == want)
            .take(64)
            .collect()
    };
    let healthy_keys = on_shard(&sharded, 1 - bad_shard);
    let doomed_keys = on_shard(&sharded, bad_shard);

    // A batch touching both shards, with the tripwire in the middle of the
    // bad shard's sub-batch: the panic must surface as Corrupt, not abort.
    let mut ops: Vec<Op> = healthy_keys.iter().map(|&k| Op::Insert(k, 1)).collect();
    ops.extend(doomed_keys.iter().map(|&k| Op::Insert(k, 1)));
    ops.insert(ops.len() / 2, Op::Insert(trigger, 1));
    let err = sharded.execute_batch(&ops).expect_err("panic must surface");
    match err {
        RumError::Corrupt(m) => assert!(m.contains("panicked"), "message: {m}"),
        other => panic!("expected Corrupt, got {other:?}"),
    }

    // The pool survives, and later batches confined to the healthy shard
    // run normally.
    assert!(sharded.pool_running(), "pool must survive a worker panic");
    let follow_up: Vec<Op> = healthy_keys.iter().map(|&k| Op::Update(k, 2)).collect();
    sharded
        .execute_batch(&follow_up)
        .expect("healthy shard keeps working");
    assert_eq!(sharded.get(healthy_keys[0]).unwrap(), Some(2));

    // Anything touching the poisoned shard — batched, per-op, or a range
    // fan-out — is refused with Corrupt instead of reading unknown state.
    for result in [
        sharded
            .execute_batch(&[Op::Insert(doomed_keys[0], 9)])
            .map(|_| ()),
        sharded.get(doomed_keys[0]).map(|_| ()),
        sharded.range(0, Key::MAX).map(|_| ()),
    ] {
        match result.expect_err("poisoned shard must refuse") {
            RumError::Corrupt(m) => assert!(m.contains("poisoned"), "message: {m}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }
    // Drop joins the workers; a hang here would fail the test by timeout.
    drop(sharded);
}

#[test]
fn poisoned_shard_heals_and_continues_with_bit_exact_costs() {
    // The full resilience cycle on the pooled path: worker panic poisons a
    // shard → explicit heal rebuilds it from the factory → the wrapper
    // keeps executing pooled batches, and everything it counts afterwards
    // is bit-identical to a never-poisoned control instance in the same
    // state. Healing restores service without perturbing the cost model.
    let trigger: Key = 0xBAD_F00D;
    let factory = move |_: usize| {
        Box::new(PanicOnKey {
            inner: rum::btree::BTree::new(),
            trigger,
        }) as Box<dyn AccessMethod>
    };
    let thread_count = || -> usize {
        if cfg!(target_os = "linux") {
            std::fs::read_dir("/proc/self/task")
                .map(|entries| entries.count())
                .unwrap_or(0)
        } else {
            0
        }
    };
    let threads_before = thread_count();

    let mut sharded = rum::core::ShardedMethod::with_threads(2, 2, factory);
    let bad_shard = sharded.shard_of(trigger);
    let keys_on = |m: &rum::core::ShardedMethod, want: usize| -> Vec<Key> {
        (0..10_000u64)
            .filter(|&key| key != trigger && m.shard_of(key) == want)
            .take(64)
            .collect()
    };
    let healthy_keys = keys_on(&sharded, 1 - bad_shard);
    let doomed_keys = keys_on(&sharded, bad_shard);
    for &k in healthy_keys.iter().chain(&doomed_keys) {
        sharded.insert(k, 1).unwrap();
    }

    // Poison → heal → poison again → heal again: healing must be
    // repeatable, not a one-shot escape hatch.
    for round in 0..2 {
        sharded
            .execute_batch(&[Op::Insert(trigger, 1)])
            .expect_err("panic must surface");
        assert_eq!(sharded.poisoned_shards(), vec![bad_shard], "round {round}");
        sharded.set_factory(factory);
        assert_eq!(sharded.heal().unwrap(), 1, "round {round}");
        assert!(sharded.poisoned_shards().is_empty(), "round {round}");
    }
    // The healed shard was rebuilt fresh (PanicOnKey has no WAL to replay):
    // its pre-panic contents are gone, the healthy shard's survived.
    assert_eq!(sharded.get(doomed_keys[0]).unwrap(), None);
    assert_eq!(sharded.get(healthy_keys[0]).unwrap(), Some(1));

    // Control: a never-poisoned instance brought to the identical state —
    // healthy shard loaded, bad shard empty.
    let mut control = rum::core::ShardedMethod::with_threads(2, 2, factory);
    for &k in &healthy_keys {
        control.insert(k, 1).unwrap();
    }

    // Identical post-heal traffic on both instances, spanning both shards;
    // the healed wrapper runs it as pooled batches, the control serially.
    let follow_up: Vec<Op> = healthy_keys
        .iter()
        .map(|&k| Op::Update(k, 2))
        .chain(doomed_keys.iter().map(|&k| Op::Insert(k, 3)))
        .chain([Op::Range(0, Key::MAX)])
        .collect();
    let healed_before = sharded.tracker().snapshot();
    let control_before = control.tracker().snapshot();
    for chunk in follow_up.chunks(17) {
        sharded.execute_batch(chunk).unwrap();
    }
    for &op in &follow_up {
        match op {
            Op::Get(k) => {
                control.get(k).unwrap();
            }
            Op::Range(lo, hi) => {
                control.range(lo, hi).unwrap();
            }
            Op::Insert(k, v) => control.insert(k, v).unwrap(),
            Op::Update(k, v) => {
                control.update(k, v).unwrap();
            }
            Op::Delete(k) => {
                control.delete(k).unwrap();
            }
        }
    }
    assert_eq!(
        sharded.tracker().since(&healed_before),
        control.tracker().since(&control_before),
        "post-heal cost folding must be bit-identical to a never-poisoned instance"
    );
    assert_eq!(
        sharded.range(0, Key::MAX).unwrap(),
        control.range(0, Key::MAX).unwrap(),
        "post-heal contents must match"
    );

    // The heal cycles must not have leaked worker threads (the pool is
    // reused, not respawned, across poison → heal).
    drop(sharded);
    drop(control);
    if cfg!(target_os = "linux") {
        let threads_after = thread_count();
        assert!(
            threads_after <= threads_before + 8,
            "heal cycle leaked threads: {threads_before} before, {threads_after} after"
        );
    }
}

#[cfg(target_os = "linux")]
#[test]
fn dropped_pools_do_not_leak_worker_threads() {
    fn thread_count() -> usize {
        std::fs::read_dir("/proc/self/task")
            .map(|entries| entries.count())
            .unwrap_or(0)
    }

    let before = thread_count();
    for round in 0..25u64 {
        let mut sharded = rum::core::ShardedMethod::with_threads(4, 2, |_| {
            Box::new(rum::btree::BTree::new()) as Box<dyn AccessMethod>
        });
        let ops: Vec<Op> = (0..256u64)
            .map(|i| Op::Insert(round * 1000 + i, i))
            .collect();
        sharded.execute_batch(&ops).unwrap();
        assert!(sharded.pool_running());
    }
    // The task count is process-global and other tests run concurrently,
    // so allow generous slack; 25 leaked pools would add ~50 threads.
    let after = thread_count();
    assert!(
        after <= before + 8,
        "worker threads leaked: {before} before, {after} after"
    );
}
