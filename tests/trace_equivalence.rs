//! The observability layer's contract, pinned on the full standard suite:
//!
//! 1. **Zero observer effect** — a run traced through the disabled
//!    [`NoopSink`] produces the same RO / UO / MO and cost snapshots as an
//!    untraced run of the same method, bit for bit. Tracing reads the
//!    tracker; it never charges it.
//! 2. **Windowed-sum invariant** — the per-window cost deltas partition
//!    the op phase: their sum equals the aggregate report's
//!    `read_costs + write_costs` byte-exactly (u64 field sums, no floats).
//! 3. **Histogram algebra** — [`LatencyHistogram::merge`] is associative
//!    and commutative, and merging shards matches recording everything in
//!    one histogram — the property the sharded runner's pointwise
//!    [`CostSnapshot::add`] already has, extended to latencies.

use proptest::prelude::*;
use rum::prelude::*;

fn spec() -> WorkloadSpec {
    WorkloadSpec {
        initial_records: 1_500,
        operations: 4_000,
        mix: OpMix::BALANCED,
        seed: 0x007E_ACE0,
        ..Default::default()
    }
}

fn assert_same_rum(ctx: &str, a: &RumReport, b: &RumReport) {
    assert_eq!(a.n_final, b.n_final, "{ctx}: n_final");
    assert_eq!(a.read_ops, b.read_ops, "{ctx}: read_ops");
    assert_eq!(a.write_ops, b.write_ops, "{ctx}: write_ops");
    assert_eq!(a.read_costs, b.read_costs, "{ctx}: read_costs");
    assert_eq!(a.write_costs, b.write_costs, "{ctx}: write_costs");
    assert_eq!(a.load_costs, b.load_costs, "{ctx}: load_costs");
    assert_eq!(a.ro.to_bits(), b.ro.to_bits(), "{ctx}: RO");
    assert_eq!(a.uo.to_bits(), b.uo.to_bits(), "{ctx}: UO");
    assert_eq!(a.mo.to_bits(), b.mo.to_bits(), "{ctx}: MO");
}

#[test]
fn noop_traced_runs_are_bit_identical_and_windows_partition_the_op_phase() {
    let spec = spec();
    let workload = Workload::generate(&spec);
    for (traced_method, untraced_method) in
        rum::standard_suite().into_iter().zip(rum::standard_suite())
    {
        let mut traced_method = traced_method;
        let mut untraced_method = untraced_method;
        let name = traced_method.name();

        let mut trace = TraceCollector::new(512, noop_sink());
        let traced = run_workload_traced(traced_method.as_mut(), &workload, &mut trace)
            .unwrap_or_else(|e| panic!("{name}: traced run failed: {e}"));
        let untraced = run_workload(untraced_method.as_mut(), &workload)
            .unwrap_or_else(|e| panic!("{name}: untraced run failed: {e}"));

        assert_same_rum(&name, &traced, &untraced);

        // Windowed deltas must sum byte-exactly to the aggregate, and
        // every op must land in exactly one window.
        let aggregate = traced.read_costs.add(&traced.write_costs);
        assert_eq!(trace.windowed_sum(), aggregate, "{name}: windowed sum");
        assert_eq!(
            trace.windows().iter().map(|w| w.ops).sum::<u64>(),
            spec.operations as u64,
            "{name}: window op partition"
        );
        assert_eq!(
            trace.windows().len(),
            spec.operations.div_ceil(512),
            "{name}: window count"
        );

        // Latency quantiles exist only on the traced report and are
        // ordered; the untraced report never times single ops.
        assert!(traced.p99_ns >= traced.p50_ns, "{name}: quantile order");
        assert_eq!(untraced.p50_ns, 0, "{name}");
        assert_eq!(untraced.p99_ns, 0, "{name}");
    }
}

/// The LSM sorted-view events obey the same opt-in/noop contract as every
/// other event kind: with a real sink the build / hit / invalidate
/// lifecycle is visible (component `"lsm"`); with the noop sink the exact
/// same op sequence charges bit-identical costs.
#[test]
fn lsm_view_events_are_opt_in_and_observer_free() {
    use rum::lsm::{LsmConfig, LsmTree};

    let run = |sink: Option<std::sync::Arc<MemorySink>>| {
        let mut t = LsmTree::with_config(LsmConfig {
            memtable_records: 64,
            sorted_view: true,
            ..Default::default()
        });
        if let Some(s) = &sink {
            t.set_trace_sink(s.clone());
        }
        for k in 0..500u64 {
            t.insert(k, k).unwrap();
        }
        t.flush().unwrap();
        t.range(0, 100).unwrap(); // lazy build + hit
        t.range(50, 200).unwrap(); // warm hit
        for k in 500..600u64 {
            t.insert(k, k).unwrap();
        }
        t.flush().unwrap(); // invalidates
        t.range(0, 100).unwrap(); // rebuild + hit
        t.tracker().snapshot()
    };

    let sink = MemorySink::shared();
    let traced = run(Some(sink.clone()));
    let untraced = run(None);
    assert_eq!(traced, untraced, "view tracing must not charge a byte");

    let events = sink.events();
    let count = |kind: EventKind| events.iter().filter(|e| e.kind == kind).count();
    assert_eq!(count(EventKind::LsmViewBuild), 2, "lazy build + rebuild");
    assert_eq!(count(EventKind::LsmViewHit), 3, "one per range query");
    assert!(
        count(EventKind::LsmViewInvalidate) >= 1,
        "flush after queries must invalidate"
    );
    for e in &events {
        if matches!(
            e.kind,
            EventKind::LsmViewBuild | EventKind::LsmViewHit | EventKind::LsmViewInvalidate
        ) {
            assert_eq!(e.kind.component(), "lsm");
        }
    }
    // Build events carry the rebuild's cost; hits carry the query's.
    let build = events
        .iter()
        .find(|e| e.kind == EventKind::LsmViewBuild)
        .unwrap();
    assert!(build.detail.iter().any(|&(k, v)| k == "bytes" && v > 0));
}

fn histogram_of(samples: &[u64]) -> LatencyHistogram {
    let mut h = LatencyHistogram::new();
    for &s in samples {
        h.record(s);
    }
    h
}

fn merged(a: &LatencyHistogram, b: &LatencyHistogram) -> LatencyHistogram {
    let mut out = a.clone();
    out.merge(b);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn histogram_merge_is_associative_and_commutative(
        xs in proptest::collection::vec(any::<u64>(), 0..80),
        ys in proptest::collection::vec(0u64..10_000_000, 0..80),
        zs in proptest::collection::vec(0u64..5_000, 0..80),
    ) {
        let (a, b, c) = (histogram_of(&xs), histogram_of(&ys), histogram_of(&zs));
        prop_assert_eq!(merged(&a, &b), merged(&b, &a));
        prop_assert_eq!(
            merged(&merged(&a, &b), &c),
            merged(&a, &merged(&b, &c))
        );
        // Merging shard-local histograms is the same as one shard having
        // seen every sample — the CostSnapshot::add property for latencies.
        let mut all: Vec<u64> = Vec::new();
        all.extend(&xs);
        all.extend(&ys);
        all.extend(&zs);
        let whole = histogram_of(&all);
        let folded = merged(&merged(&a, &b), &c);
        prop_assert_eq!(&folded, &whole);
        prop_assert_eq!(folded.count(), (xs.len() + ys.len() + zs.len()) as u64);
        prop_assert_eq!(folded.p50(), whole.p50());
        prop_assert_eq!(folded.p999(), whole.p999());
    }
}
