//! Flush idempotence across the standard suite: `flush()` pushes buffered
//! state to its final place, so a second consecutive flush must have
//! nothing left to push — zero additional physical write bytes and zero
//! page writes, pinned via `CostTracker` deltas. A method that rewrites
//! state on every flush would silently inflate UO for any driver that
//! flushes defensively.

use rum::prelude::*;

#[test]
fn second_flush_performs_zero_physical_writes() {
    let spec = WorkloadSpec {
        initial_records: 2000,
        operations: 1500,
        mix: OpMix::BALANCED,
        seed: 0xF1u64,
        ..Default::default()
    };
    let workload = Workload::generate(&spec);
    for mut method in rum::standard_suite() {
        let name = method.name();
        run_workload(method.as_mut(), &workload)
            .unwrap_or_else(|e| panic!("{name}: workload failed: {e}"));
        method
            .flush()
            .unwrap_or_else(|e| panic!("{name}: first flush failed: {e}"));
        let before = method.tracker().snapshot();
        method
            .flush()
            .unwrap_or_else(|e| panic!("{name}: second flush failed: {e}"));
        let delta = method.tracker().since(&before);
        assert_eq!(
            delta.total_write_bytes(),
            0,
            "{name}: second flush wrote {} bytes",
            delta.total_write_bytes()
        );
        assert_eq!(
            delta.page_writes, 0,
            "{name}: second flush touched {} pages",
            delta.page_writes
        );
    }
}
