//! The headline test: the RUM Conjecture itself, checked against every
//! access method in the suite.
//!
//! "An ideal solution is an access method that always provides the lowest
//! read cost, the lowest update cost, and requires no extra memory or
//! storage space over the base data. In practice, data structures are
//! designed to compromise between the three RUM overheads."
//!
//! Operationally: on a common mixed workload, **no method lands within a
//! small factor of the per-axis minimum on all three axes at once**. If
//! any method ever passes that test, either the conjecture is violated or
//! (far more likely) the accounting has a bug — both worth failing loudly
//! over.

use rum::prelude::*;

struct Measured {
    name: String,
    ro: f64,
    uo: f64,
    mo: f64,
}

fn measure_suite(spec: &WorkloadSpec) -> Vec<Measured> {
    let workload = Workload::generate(spec);
    run_suite_parallel(&mut rum::standard_suite(), &workload)
        .unwrap_or_else(|e| panic!("suite run failed: {e}"))
        .into_iter()
        .map(|r| Measured {
            name: r.method,
            ro: r.ro,
            uo: r.uo,
            mo: r.mo,
        })
        .collect()
}

#[test]
fn no_method_wins_all_three_overheads() {
    let spec = WorkloadSpec {
        initial_records: 4096,
        operations: 4096,
        mix: OpMix::BALANCED,
        seed: 0x52554D, // "RUM"
        ..Default::default()
    };
    let results = measure_suite(&spec);

    // Per-axis minima across the suite. Overheads have a hard floor of
    // 1.0, so "close to the winner" uses the distance above 1.0.
    let min_ro = results.iter().map(|r| r.ro).fold(f64::MAX, f64::min);
    let min_uo = results.iter().map(|r| r.uo).fold(f64::MAX, f64::min);
    let min_mo = results.iter().map(|r| r.mo).fold(f64::MAX, f64::min);

    let near = |x: f64, min: f64| (x - 1.0) <= 2.0 * (min - 1.0).max(0.05);

    let all_three: Vec<&Measured> = results
        .iter()
        .filter(|r| near(r.ro, min_ro) && near(r.uo, min_uo) && near(r.mo, min_mo))
        .collect();
    assert!(
        all_three.is_empty(),
        "the RUM Conjecture just fell: {:?} won all three axes (mins: RO {min_ro:.2}, UO {min_uo:.2}, MO {min_mo:.2})",
        all_three.iter().map(|r| &r.name).collect::<Vec<_>>()
    );
}

#[test]
fn every_axis_has_a_different_kind_of_winner() {
    // Sanity on the design space: the RO winner, the UO winner, and the
    // MO winner must be different methods (otherwise the suite does not
    // span the triangle).
    let spec = WorkloadSpec {
        initial_records: 4096,
        operations: 4096,
        mix: OpMix::BALANCED,
        seed: 7,
        ..Default::default()
    };
    let results = measure_suite(&spec);
    let argmin = |f: fn(&Measured) -> f64| -> &str {
        &results
            .iter()
            .min_by(|a, b| f(a).total_cmp(&f(b)))
            .expect("non-empty")
            .name
    };
    let ro_winner = argmin(|r| r.ro);
    let uo_winner = argmin(|r| r.uo);
    let mo_winner = argmin(|r| r.mo);
    assert_ne!(ro_winner, uo_winner, "read and write winners coincide");
    assert_ne!(ro_winner, mo_winner, "read and space winners coincide");
}

#[test]
fn overheads_never_dip_below_their_theoretical_minimum() {
    // RO/UO/MO all have a floor of 1.0 by definition. Tolerate a small
    // epsilon below 1.0 for UO on structures whose physical write can be
    // smaller than the logical record (none should exist — this is the
    // accounting sanity net).
    for mix in [OpMix::BALANCED, OpMix::READ_HEAVY, OpMix::WRITE_HEAVY] {
        let spec = WorkloadSpec {
            initial_records: 2048,
            operations: 2048,
            mix,
            seed: 11,
            ..Default::default()
        };
        for r in measure_suite(&spec) {
            assert!(r.mo >= 1.0 - 1e-9, "{}: MO {} < 1", r.name, r.mo);
            assert!(
                r.uo >= 1.0 - 1e-9 || r.uo == 1.0,
                "{}: UO {} < 1",
                r.name,
                r.uo
            );
            // RO can only dip below 1.0 if a method fabricates results
            // without reading them — flag it.
            assert!(r.ro >= 0.99, "{}: RO {} < 1", r.name, r.ro);
        }
    }
}
