//! Cross-method differential testing: every access method in the
//! standard suite must agree with a model (`BTreeMap`) — and therefore
//! with each other — under a randomized operation stream.
//!
//! This is the strongest correctness net in the repository: any method
//! whose reorganization (splits, compactions, cracks, merges, zone
//! rebuilds...) loses or corrupts a record fails here.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rum::prelude::*;

fn differential_run(method: &mut dyn AccessMethod, seed: u64, steps: u64) {
    let name = method.name();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut model = std::collections::BTreeMap::new();

    // Start from a bulk-loaded base half the time.
    if seed.is_multiple_of(2) {
        let recs: Vec<Record> = (0..500u64).map(|k| Record::new(k * 3, k)).collect();
        method.bulk_load(&recs).unwrap();
        model.extend(recs.iter().map(|r| (r.key, r.value)));
    }

    for step in 0..steps {
        let k = rng.gen_range(0..1500u64);
        match rng.gen_range(0..6) {
            0 | 1 => {
                method.insert(k, step).unwrap();
                model.insert(k, step);
            }
            2 => {
                assert_eq!(
                    method.update(k, step).unwrap(),
                    model.contains_key(&k),
                    "{name}: update {k} at step {step}"
                );
                model.entry(k).and_modify(|v| *v = step);
            }
            3 => {
                assert_eq!(
                    method.delete(k).unwrap(),
                    model.remove(&k).is_some(),
                    "{name}: delete {k} at step {step}"
                );
            }
            4 => {
                assert_eq!(
                    method.get(k).unwrap(),
                    model.get(&k).copied(),
                    "{name}: get {k} at step {step}"
                );
            }
            _ => {
                let hi = k + rng.gen_range(0..40u64);
                let got = method.range(k, hi).unwrap();
                let expect: Vec<Record> = model
                    .range(k..=hi)
                    .map(|(&k, &v)| Record::new(k, v))
                    .collect();
                assert_eq!(got, expect, "{name}: range {k}..={hi} at step {step}");
            }
        }
        assert_eq!(method.len(), model.len(), "{name}: len at step {step}");
    }

    // Final sweep: the full contents must match exactly.
    let all = method.range(0, u64::MAX).unwrap();
    let expect: Vec<Record> = model.iter().map(|(&k, &v)| Record::new(k, v)).collect();
    assert_eq!(all, expect, "{name}: final contents");
}

#[test]
fn every_suite_method_matches_the_model() {
    // Each differential run is independent, so fan them across cores.
    let methods: Vec<(usize, Box<dyn AccessMethod>)> =
        rum::standard_suite().into_iter().enumerate().collect();
    parallel_map(
        methods,
        rum::core::runner::default_threads(),
        |(i, mut method)| differential_run(method.as_mut(), i as u64, 2500),
    );
}

#[test]
fn suite_methods_agree_after_flush() {
    // Flush mid-stream and keep going: buffered state must survive.
    for mut method in rum::standard_suite() {
        let name = method.name();
        for k in 0..600u64 {
            method.insert(k, k).unwrap();
        }
        method.flush().unwrap();
        for k in 0..600u64 {
            assert_eq!(method.get(k).unwrap(), Some(k), "{name}: {k} after flush");
        }
        method.flush().unwrap(); // idempotent
        assert_eq!(method.len(), 600, "{name}");
    }
}

#[test]
fn bulk_load_replaces_prior_contents_everywhere() {
    for mut method in rum::standard_suite() {
        let name = method.name();
        for k in 0..100u64 {
            method.insert(k * 2 + 1, 1).unwrap();
        }
        let recs: Vec<Record> = (0..50u64).map(|k| Record::new(k * 10, k)).collect();
        method.bulk_load(&recs).unwrap();
        assert_eq!(method.len(), 50, "{name}");
        assert_eq!(method.get(1).unwrap(), None, "{name}: old key resurfaced");
        assert_eq!(method.get(100).unwrap(), Some(10), "{name}");
    }
}

#[test]
fn empty_methods_answer_correctly() {
    for mut method in rum::standard_suite() {
        let name = method.name();
        assert_eq!(method.len(), 0, "{name}");
        assert!(method.is_empty(), "{name}");
        assert_eq!(method.get(42).unwrap(), None, "{name}");
        assert!(!method.update(42, 1).unwrap(), "{name}");
        assert!(!method.delete(42).unwrap(), "{name}");
        assert!(method.range(0, 1000).unwrap().is_empty(), "{name}");
    }
}

#[test]
fn zipfian_streams_are_handled() {
    // Skewed workloads hammer hot keys: repeated upsert/delete/reinsert
    // of the same few keys stresses tombstone and versioning paths.
    let spec = WorkloadSpec {
        initial_records: 800,
        operations: 3000,
        mix: OpMix::BALANCED,
        dist: KeyDist::Zipf { theta: 0.99 },
        seed: 31,
        ..Default::default()
    };
    let workload = Workload::generate(&spec);
    let reports = run_suite_parallel(&mut rum::standard_suite(), &workload)
        .unwrap_or_else(|e| panic!("suite run failed: {e}"));
    for report in reports {
        assert!(
            report.ro >= 1.0 || report.read_ops == 0,
            "{}",
            report.method
        );
    }
}
