//! The metrics plane's contract, pinned end-to-end on real access-method
//! stacks:
//!
//! 1. **Byte-exact conservation** — after a metered run, the debt
//!    ledger's per-class attributed read/write bytes sum bit-equal to the
//!    method's own tracker totals ([`DebtSnapshot::conserves`]), for the
//!    B-tree, every LSM variant (levelled, tiered, sorted-view), and the
//!    WAL-wrapped durable stack. Re-attribution moves bytes between op
//!    classes; it never mints or loses any.
//! 2. **Deferred-write debt closes the loop** — LSM stacks accrue debt
//!    at insert/update time and settle it at flush/compaction;
//!    `accrued - settled == outstanding` and settlement happens.
//! 3. **Zero observer effect** — a run under a full metrics plane (sink
//!    installed, ledger charging, gauges republished every window) is
//!    bit-identical in RO / UO / MO and all cost snapshots to a plain
//!    run of the same stream.

use rum::prelude::*;

fn spec() -> WorkloadSpec {
    WorkloadSpec {
        initial_records: 1_500,
        operations: 4_000,
        mix: OpMix::BALANCED,
        seed: 0x0DEB_7C05,
        ..Default::default()
    }
}

/// The stacks whose background machinery the ledger must attribute:
/// read-optimized (no background bytes), levelled/tiered LSM (flush +
/// compaction), sorted-view LSM (view rebuilds during read spans), and
/// the WAL-wrapped durable LSM (sync + checkpoint + recovery path).
const STACKS: [&str; 5] = [
    "b+tree",
    "lsm-tree",
    "lsm-tree-tiered",
    "lsm-tree+view",
    "lsm-tree+wal",
];

fn find(name: &str) -> Box<dyn AccessMethod> {
    rum::standard_suite()
        .into_iter()
        .find(|m| m.name() == name)
        .unwrap_or_else(|| panic!("{name} not in standard_suite"))
}

fn metered_run(name: &str) -> (RumReport, DebtSnapshot, CostSnapshot) {
    let mut method = find(name);
    let plane = MetricsPlane::shared();
    let sink = plane.sink();
    method.set_trace_sink(sink.clone());
    let mut trace = TraceCollector::new(256, sink);
    let report = run_stream_metered(method.as_mut(), OpStream::new(&spec()), &mut trace, &plane)
        .unwrap_or_else(|e| panic!("{name}: metered run failed: {e}"));
    let totals = method.tracker().snapshot();
    (report, plane.ledger().snapshot(), totals)
}

#[test]
fn attribution_conserves_bytes_on_every_stack() {
    for name in STACKS {
        let (_, debt, totals) = metered_run(name);
        assert!(
            debt.conserves(&totals),
            "{name}: attributed bytes must sum bit-equal to tracker totals\n{debt:?}\n{totals:?}"
        );
        assert_eq!(
            debt.attributed_read_total(),
            totals.total_read_bytes() as i128,
            "{name}: read bytes"
        );
        assert_eq!(
            debt.attributed_write_total(),
            totals.total_write_bytes() as i128,
            "{name}: write bytes"
        );
    }
}

#[test]
fn deferred_write_debt_accrues_and_settles_on_lsm_stacks() {
    for name in ["lsm-tree", "lsm-tree-tiered", "lsm-tree+wal"] {
        let (_, debt, _) = metered_run(name);
        assert!(debt.debt_accrued_bytes > 0, "{name}: no debt accrued");
        assert!(debt.debt_settled_bytes > 0, "{name}: nothing settled");
        assert_eq!(
            debt.debt_outstanding_bytes(),
            debt.debt_accrued_bytes
                .saturating_sub(debt.debt_settled_bytes),
            "{name}: outstanding must be accrued - settled"
        );
    }
    // The read-optimized corner defers nothing to settle: the B-tree
    // accrues write debt but has no flush/compaction to pay it down.
    let (_, debt, _) = metered_run("b+tree");
    assert_eq!(debt.debt_settled_bytes, 0, "b+tree settles nothing");
}

#[test]
fn view_rebuilds_reattribute_bytes_from_readers_to_writers() {
    let (_, debt, totals) = metered_run("lsm-tree+view");
    assert!(
        debt.reattributed_write_bytes > 0,
        "sorted-view rebuilds must move bytes between classes"
    );
    assert!(debt.conserves(&totals), "moves stay zero-sum");
}

#[test]
fn metered_run_is_bit_identical_to_plain_run() {
    for name in STACKS {
        let mut plain = find(name);
        let baseline = run_stream(plain.as_mut(), OpStream::new(&spec()))
            .unwrap_or_else(|e| panic!("{name}: plain run failed: {e}"));
        let (observed, _, _) = metered_run(name);
        assert_eq!(baseline.n_final, observed.n_final, "{name}: n_final");
        assert_eq!(baseline.read_ops, observed.read_ops, "{name}: read_ops");
        assert_eq!(baseline.write_ops, observed.write_ops, "{name}: write_ops");
        assert_eq!(
            baseline.read_costs, observed.read_costs,
            "{name}: read_costs"
        );
        assert_eq!(
            baseline.write_costs, observed.write_costs,
            "{name}: write_costs"
        );
        assert_eq!(
            baseline.load_costs, observed.load_costs,
            "{name}: load_costs"
        );
        assert_eq!(baseline.ro.to_bits(), observed.ro.to_bits(), "{name}: RO");
        assert_eq!(baseline.uo.to_bits(), observed.uo.to_bits(), "{name}: UO");
        assert_eq!(baseline.mo.to_bits(), observed.mo.to_bits(), "{name}: MO");
    }
}
