//! # rum — the RUM Conjecture, reproduced in Rust
//!
//! A full reproduction of *Designing Access Methods: The RUM Conjecture*
//! (Athanassoulis, Kester, Maas, Stoica, Idreos, Ailamaki, Callaghan —
//! EDBT 2016): every access-method family the paper discusses, built over
//! an instrumented storage substrate that measures exactly the three
//! overheads the paper defines:
//!
//! * **RO** — read amplification: physical bytes read / bytes retrieved,
//! * **UO** — write amplification: physical bytes written / bytes
//!   logically updated,
//! * **MO** — space amplification: (base + auxiliary) bytes / base bytes.
//!
//! ## Quick start
//!
//! ```
//! use rum::prelude::*;
//!
//! // Pick an access method (anything implementing AccessMethod).
//! let mut index = rum::btree::BTree::new();
//!
//! // Generate a reproducible workload and run it.
//! let spec = WorkloadSpec {
//!     initial_records: 10_000,
//!     operations: 5_000,
//!     mix: OpMix::BALANCED,
//!     ..Default::default()
//! };
//! let workload = Workload::generate(&spec);
//! let report = run_workload(&mut index, &workload).unwrap();
//!
//! // The three RUM overheads, measured.
//! assert!(report.ro >= 1.0);
//! assert!(report.uo >= 1.0);
//! assert!(report.mo >= 1.0);
//! ```
//!
//! ## Crate map
//!
//! | Crate | Contents |
//! |---|---|
//! | [`core`] | `AccessMethod` trait, cost tracking, workloads, RUM triangle, wizard |
//! | [`storage`] | pages, instrumented devices, buffer pool, memory hierarchy |
//! | [`columns`] | sorted/unsorted columns + the §2 extreme designs (Props 1–3) |
//! | [`btree`] | tunable paged B+-tree (read-optimized corner) |
//! | [`hash`] | static + extendible hashing |
//! | [`memindex`] | skip list, radix trie |
//! | [`sketch`] | Bloom, counting Bloom, count-min, quotient filter |
//! | [`sparse`] | zone maps / SMAs, column imprints |
//! | [`bitmap`] | WAH bitmaps, update-friendly bitmaps, bitmap index |
//! | [`lsm`] | levelled & tiered LSM-tree with Bloom filters and dynamic tuning |
//! | [`adaptive`] | database cracking (plain & stochastic), adaptive merging |

pub mod selftune;

pub use rum_adaptive as adaptive;
pub use rum_bitmap as bitmap;
pub use rum_btree as btree;
pub use rum_columns as columns;
pub use rum_core as core;
pub use rum_hash as hash;
pub use rum_lsm as lsm;
pub use rum_memindex as memindex;
pub use rum_sketch as sketch;
pub use rum_sparse as sparse;
pub use rum_storage as storage;

/// The most common imports in one place.
pub mod prelude {
    pub use rum_core::advisor::{
        MeasuredRanking, MeasuredRecommendation, MethodProfile, ProfilePoint, ProfileStore,
    };
    pub use rum_core::autotune::{
        AutoTuneConfig, AutoTuneSummary, AutoTuner, MigrationReceipt, Morphable, OpCounts,
        RetuneEstimate, TuneKind, TunePlan,
    };
    pub use rum_core::metrics::{
        ClassAttribution, DebtLedger, DebtSnapshot, MetricsPlane, MetricsRegistry, MetricsSink,
        MetricsSnapshot, OpClass,
    };
    pub use rum_core::runner::{
        measure_ops, parallel_map, run_stream, run_stream_autotuned, run_stream_metered,
        run_stream_sharded, run_stream_sharded_traced, run_stream_traced, run_suite,
        run_suite_parallel, run_suite_stream, run_suite_with_threads, run_workload,
        run_workload_traced, RumReport, DEFAULT_STREAM_BATCH,
    };
    pub use rum_core::trace::{
        noop_sink, Event, EventKind, LatencyHistogram, MemorySink, NoopSink, TraceCollector,
        TraceSink, TrajectoryWindow, DEFAULT_TRACE_WINDOW,
    };
    pub use rum_core::triangle::{render_ascii, rum_point, to_csv, RumPoint};
    pub use rum_core::wizard::{recommend, Constraints, Environment, Family, Recommendation};
    pub use rum_core::workload::{KeyDist, KeySpace, Op, OpMix, OpStream, Workload, WorkloadSpec};
    pub use rum_core::{
        AccessMethod, CostSnapshot, CostTracker, DataClass, Key, Record, Result, RumError,
        ShardedMethod, SpaceProfile, Value, PAGE_SIZE, RECORDS_PER_PAGE, RECORD_SIZE,
    };
}

use rum_core::AccessMethod;

/// The standard suite of access methods used by the Figure 1 experiment
/// and the integration tests: one representative per family in the
/// paper's RUM-space figure.
///
/// Every returned method supports the full [`AccessMethod`] contract
/// (point/range/insert/update/delete/bulk-load).
pub fn standard_suite() -> Vec<Box<dyn AccessMethod>> {
    vec![
        Box::new(btree::BTree::new()),
        Box::new(hash::StaticHash::new()),
        Box::new(hash::ExtendibleHash::new()),
        Box::new(memindex::SkipList::new()),
        Box::new(memindex::RadixTrie::new()),
        Box::new(memindex::CsbTree::new()),
        // Memtables sized so suite-scale workloads actually flush and
        // compact (the default 4096 would swallow a small write stream
        // whole and both variants would measure identically).
        Box::new(lsm::LsmTree::with_config(lsm::LsmConfig {
            memtable_records: 256,
            ..Default::default()
        })),
        Box::new(lsm::LsmTree::with_config(lsm::LsmConfig {
            memtable_records: 256,
            policy: lsm::CompactionPolicy::Tiering,
            ..Default::default()
        })),
        // The levelled LSM with the REMIX-style cross-run sorted view:
        // range queries binary-search one global anchor array instead of
        // probing every run — RO bought with the view's MO and rebuild UO.
        Box::new(lsm::LsmTree::with_config(lsm::LsmConfig {
            memtable_records: 256,
            sorted_view: true,
            ..Default::default()
        })),
        // The levelled LSM again, behind the write-ahead log: same
        // structure, UO now honestly includes the durability protocol —
        // the RUM price of crash consistency, visible in Figure 1.
        Box::new(lsm::durable_lsm(lsm::LsmConfig {
            memtable_records: 256,
            ..Default::default()
        })),
        Box::new(columns::AppendLog::new()),
        Box::new(columns::SortedColumn::new()),
        Box::new(columns::UnsortedColumn::new()),
        Box::new(sparse::ZoneMappedColumn::new()),
        Box::new(sparse::BfTree::new()),
        Box::new(bitmap::BitmapIndex::new()),
        Box::new(adaptive::CrackedColumn::new()),
        Box::new(adaptive::AdaptiveMerger::default()),
        Box::new(adaptive::MorphingIndex::new()),
        Box::new(btree::PartitionedBTree::with_config(btree::PbtConfig {
            partition_records: 512,
            ..Default::default()
        })),
        // Sharded composition: K=4 hash-partitioned B+-trees behind one
        // facade — the RUM tradeoff at the system level (MO spent on K
        // auxiliary structures buys concurrent execution, not lower RO).
        Box::new(core::ShardedMethod::new(4, |_| {
            Box::new(btree::BTree::new())
        })),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    #[test]
    fn suite_members_have_unique_names() {
        let suite = standard_suite();
        let names: Vec<String> = suite.iter().map(|m| m.name()).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "duplicate names in {names:?}");
        assert!(suite.len() >= 12);
    }

    #[test]
    fn every_suite_member_runs_the_balanced_workload() {
        let spec = WorkloadSpec {
            initial_records: 2000,
            operations: 1000,
            mix: OpMix::BALANCED,
            seed: 5,
            ..Default::default()
        };
        let workload = Workload::generate(&spec);
        let mut suite = standard_suite();
        let expected = suite.len();
        let reports = run_suite_parallel(&mut suite, &workload)
            .unwrap_or_else(|e| panic!("suite run failed: {e}"));
        assert_eq!(reports.len(), expected);
        for report in reports {
            assert!(report.mo >= 1.0, "{}: mo {}", report.method, report.mo);
            assert!(report.n_final > 0, "{}", report.method);
        }
    }
}
