//! Cross-family self-tuning — the paper's §5 endgame: an access method
//! that does not just re-tune its knobs but *changes family* when the
//! workload drifts far enough, while its answers and its cost account
//! stay continuous.
//!
//! [`FamilyMorph`] wraps any suite structure behind a stable facade
//! [`CostTracker`]: every physical byte the inner structure charges is
//! absorbed into the facade account, so a family swap (drain → build →
//! bulk load) is just another priced reorganization — its I/O lands in
//! UO and its transient double-residency is reported as MO in the
//! [`MigrationReceipt`]. The [`AutoTuner`](rum_core::autotune::AutoTuner)
//! drives swaps through the [`Morphable`] face using the calibrated
//! advisor's family ranking.

use std::sync::Arc;

use rum_core::autotune::{MigrationReceipt, Morphable, RetuneEstimate};
use rum_core::trace::TraceSink;
use rum_core::wizard::{Environment, Family};
use rum_core::workload::OpMix;
use rum_core::{
    AccessMethod, CostSnapshot, CostTracker, Key, Record, Result, SpaceProfile, Value, RECORD_SIZE,
};

/// Build a fresh, empty representative of `family`, or `None` for
/// families that cannot serve the full range contract (hash indexes).
///
/// The LSM memtable matches [`standard_suite`](crate::standard_suite)'s
/// sizing so drift-scale write streams actually flush and compact.
pub fn build_family(family: Family) -> Option<Box<dyn AccessMethod>> {
    match family {
        Family::BTree => Some(Box::new(crate::btree::BTree::new())),
        Family::HashIndex => None,
        Family::ZoneMap => Some(Box::new(crate::sparse::ZoneMappedColumn::new())),
        Family::LsmTree => Some(Box::new(crate::lsm::LsmTree::with_config(
            crate::lsm::LsmConfig {
                memtable_records: 256,
                ..Default::default()
            },
        ))),
        Family::SortedColumn => Some(Box::new(crate::columns::SortedColumn::new())),
        Family::UnsortedColumn => Some(Box::new(crate::columns::UnsortedColumn::new())),
        Family::CrackedColumn => Some(Box::new(crate::adaptive::CrackedColumn::new())),
    }
}

/// An access method that can swap its entire family under the
/// [`AutoTuner`](rum_core::autotune::AutoTuner)'s direction.
pub struct FamilyMorph {
    inner: Box<dyn AccessMethod>,
    family: Family,
    /// The stable facade account: survives swaps, so RO/UO/MO accumulate
    /// across the structure's whole life regardless of its current shape.
    tracker: Arc<CostTracker>,
    /// Where the inner tracker stood at the last absorption.
    inner_mark: CostSnapshot,
    sink: Arc<dyn TraceSink>,
    swaps: u64,
}

impl FamilyMorph {
    /// Wrap a fresh representative of `family`. `None` only for
    /// [`Family::HashIndex`] (no range contract, so it cannot be drained
    /// into — or out of — by a swap).
    pub fn new(family: Family) -> Option<Self> {
        let inner = build_family(family)?;
        let inner_mark = inner.tracker().snapshot();
        Some(FamilyMorph {
            inner,
            family,
            tracker: CostTracker::new(),
            inner_mark,
            sink: rum_core::trace::noop_sink(),
            swaps: 0,
        })
    }

    /// The family currently resident.
    pub fn current_family(&self) -> Family {
        self.family
    }

    /// Family swaps performed so far.
    pub fn swaps(&self) -> u64 {
        self.swaps
    }

    /// Pull everything the inner structure charged since the last sync
    /// into the facade account.
    fn sync(&mut self) {
        let now = self.inner.tracker().snapshot();
        self.tracker.absorb(&now.delta(&self.inner_mark));
        self.inner_mark = now;
    }
}

impl AccessMethod for FamilyMorph {
    fn name(&self) -> String {
        format!("family-morph[{}]", self.inner.name())
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn tracker(&self) -> &Arc<CostTracker> {
        &self.tracker
    }

    fn space_profile(&self) -> SpaceProfile {
        self.inner.space_profile()
    }

    fn get_impl(&mut self, key: Key) -> Result<Option<Value>> {
        let r = self.inner.get_impl(key);
        self.sync();
        r
    }

    fn range_impl(&mut self, lo: Key, hi: Key) -> Result<Vec<Record>> {
        let r = self.inner.range_impl(lo, hi);
        self.sync();
        r
    }

    fn insert_impl(&mut self, key: Key, value: Value) -> Result<()> {
        let r = self.inner.insert_impl(key, value);
        self.sync();
        r
    }

    fn update_impl(&mut self, key: Key, value: Value) -> Result<bool> {
        let r = self.inner.update_impl(key, value);
        self.sync();
        r
    }

    fn delete_impl(&mut self, key: Key) -> Result<bool> {
        let r = self.inner.delete_impl(key);
        self.sync();
        r
    }

    fn bulk_load_impl(&mut self, records: &[Record]) -> Result<()> {
        let r = self.inner.bulk_load_impl(records);
        self.sync();
        r
    }

    fn flush(&mut self) -> Result<()> {
        let r = self.inner.flush();
        self.sync();
        r
    }

    fn set_trace_sink(&mut self, sink: Arc<dyn TraceSink>) {
        self.sink = Arc::clone(&sink);
        self.inner.set_trace_sink(sink);
    }

    fn try_heal(&mut self) -> Result<bool> {
        let r = self.inner.try_heal();
        self.sync();
        r
    }
}

impl Morphable for FamilyMorph {
    fn family(&self) -> Family {
        self.family
    }

    fn shape(&self) -> String {
        format!("{:?}", self.family)
    }

    fn retune_gain(&mut self, _mix: &OpMix, _env: &Environment) -> Option<RetuneEstimate> {
        // The facade has no knobs of its own; in-place advice belongs to
        // knob-aware wrappers like `rum_lsm::tuning::SelfTuningLsm`. The
        // tuner's family-swap path (calibrated advisor ranking) is how
        // this structure adapts.
        None
    }

    fn morph_to(&mut self, family: Family, _mix: &OpMix) -> Result<Option<MigrationReceipt>> {
        if family == self.family {
            return Ok(None);
        }
        let Some(mut fresh) = build_family(family) else {
            return Ok(None);
        };
        let from = self.shape();
        let old_resident = self.inner.space_profile().total_bytes();
        let mark = self.tracker.snapshot();
        // Drain through the priced read path: the old shape's RO is the
        // first half of the migration bill.
        let all = self.inner.range_impl(0, u64::MAX)?;
        self.sync();
        fresh.set_trace_sink(Arc::clone(&self.sink));
        fresh.bulk_load_impl(&all)?;
        // Adopt the new shape; fold its construction cost (counted from
        // zero on its fresh tracker) into the facade account.
        self.inner = fresh;
        self.inner_mark = CostSnapshot::default();
        self.sync();
        self.family = family;
        self.swaps += 1;
        let delta = self.tracker.since(&mark);
        Ok(Some(MigrationReceipt {
            from,
            to: self.shape(),
            bytes_read: delta.total_read_bytes(),
            bytes_written: delta.total_write_bytes(),
            peak_extra_bytes: old_resident + (all.len() * RECORD_SIZE) as u64,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rum_core::AccessMethod;

    #[test]
    fn every_range_capable_family_builds() {
        for family in Family::ALL {
            let built = build_family(family);
            assert_eq!(
                built.is_some(),
                family != Family::HashIndex,
                "{family:?} availability"
            );
        }
    }

    #[test]
    fn swap_preserves_contents_answers_and_tracker_identity() {
        let mut m = FamilyMorph::new(Family::BTree).unwrap();
        for k in 0..2000u64 {
            m.insert(k * 3, k).unwrap();
        }
        m.delete(30).unwrap();
        let tracker = Arc::clone(m.tracker());
        let before_answers = m.range(0, 600).unwrap();

        let receipt = m
            .morph_to(Family::LsmTree, &OpMix::WRITE_HEAVY)
            .unwrap()
            .expect("cross-family morph must run");
        assert_eq!(m.current_family(), Family::LsmTree);
        assert_eq!(m.swaps(), 1);
        assert!(receipt.bytes_read > 0, "drain must be priced");
        assert!(receipt.bytes_written > 0, "rebuild must be priced");
        assert!(
            receipt.peak_extra_bytes as usize >= 1999 * RECORD_SIZE,
            "double residency must cover the drain buffer"
        );
        assert!(Arc::ptr_eq(&tracker, m.tracker()), "account must survive");
        assert_eq!(m.len(), 1999);
        assert_eq!(m.range(0, 600).unwrap(), before_answers);
        assert_eq!(m.get(30).unwrap(), None);
        assert_eq!(m.get(33).unwrap(), Some(11));
    }

    #[test]
    fn migration_io_lands_on_the_facade_account() {
        let mut m = FamilyMorph::new(Family::SortedColumn).unwrap();
        for k in 0..500u64 {
            m.insert(k, k).unwrap();
        }
        let before = m.tracker().snapshot();
        m.morph_to(Family::CrackedColumn, &OpMix::BALANCED)
            .unwrap()
            .unwrap();
        let delta = m.tracker().since(&before);
        assert!(delta.total_read_bytes() > 0 && delta.total_write_bytes() > 0);
        // Post-swap traffic keeps flowing into the same account.
        let mark = m.tracker().snapshot();
        m.get(250).unwrap();
        assert!(m.tracker().since(&mark).total_read_bytes() > 0);
    }

    #[test]
    fn unsupported_or_identity_swaps_are_declined() {
        let mut m = FamilyMorph::new(Family::BTree).unwrap();
        m.insert(1, 1).unwrap();
        assert!(m
            .morph_to(Family::BTree, &OpMix::BALANCED)
            .unwrap()
            .is_none());
        assert!(m
            .morph_to(Family::HashIndex, &OpMix::BALANCED)
            .unwrap()
            .is_none());
        assert_eq!(m.current_family(), Family::BTree);
        assert_eq!(m.swaps(), 0);
    }
}
